//! The socket front end: a TCP / Unix-socket accept loop feeding the
//! [`crate::serve`] frame path through a syscall-lean, allocation-free
//! steady-state data path.
//!
//! [`crate::serve::serve`] answers a *batch* of frames in one call; a
//! [`NetServer`] serves the same frames off a stream transport, one
//! length-delimited envelope at a time, through the same per-frame code
//! path — so a socket client's responses are **byte-identical** to the
//! in-process loop's on the same frame sequence (pinned by
//! `tests/net.rs`).
//!
//! # Envelope
//!
//! Both directions carry `zigzag-frame v1` / `zigzag-response v1` /
//! `zigzag-error v1` documents in the length-delimited envelope
//! specified in [`crate::wire`]'s module docs: a 4-byte big-endian
//! length followed by that many bytes of UTF-8. [`write_envelope`] /
//! [`read_envelope`] are the one-at-a-time client halves;
//! [`encode_envelope_into`] + [`EnvelopeScanner`] are the batched,
//! buffer-reusing halves a pipelining client (and the server itself)
//! uses. An envelope whose declared length exceeds
//! [`NetConfig::max_frame_bytes`], or whose bytes are not UTF-8, is
//! answered with one `zigzag-error v1` envelope and the connection is
//! closed — the declared length is never trusted before the bound
//! check, so a hostile header cannot make the server allocate.
//!
//! # Architecture
//!
//! ```text
//! accept loop ──▶ per-connection reader ──▶ bounded worker queues ──▶ workers
//!                  │ (slurps large reads,                               │
//!                  │  scans frames, routes by shard)                    ▼
//!                  ▼                                          reply rail (seq-ordered)
//!          per-connection writer ◀── coalesced batched writes ◀─────────┘
//! ```
//!
//! * **Syscall-lean reads** — each reader owns a reusable
//!   [`EnvelopeScanner`]: one `read` slurps up to
//!   [`NetConfig::read_chunk_bytes`] and *every* complete envelope in
//!   the buffer is scanned out and routed before the next syscall, with
//!   frames split across arbitrary read boundaries reassembled in
//!   place. A pipelining client's N frames cost a handful of reads, not
//!   2·N.
//! * **Coalesced writes** — worker answers land on a per-connection
//!   reply rail that reorders them by arrival sequence; each writer
//!   wakeup drains *all* answers that are ready in arrival order and
//!   writes them as one batched envelope run with a single flush
//!   (bounded by [`NetConfig::write_coalesce_bytes`] per `write`).
//!   `TCP_NODELAY` is set on accepted TCP sockets so batching never
//!   trades throughput for Nagle latency.
//! * **Allocation-free steady state** — frame and response documents
//!   live in pooled `String` buffers recycled reader → worker → writer
//!   → pool; a warm framed round-trip performs zero server-side heap
//!   allocations (pinned by `tests/netalloc.rs`).
//! * **Session affinity** — each frame is routed to the worker owning
//!   its session's shard (the same `shard % workers` rule as
//!   [`crate::serve`]), and each worker processes its queue in FIFO
//!   order, so one session's frames are answered in arrival order no
//!   matter how many connections or workers exist.
//! * **Backpressure** — worker queues are bounded
//!   ([`NetConfig::queue_capacity`]): a frame arriving at a full queue
//!   is rejected *immediately* with a deterministic
//!   [`Error::Overloaded`] document in its arrival slot. Each
//!   connection's outstanding answers are bounded too
//!   ([`NetConfig::max_inflight_frames`]): a client that pipelines
//!   frames without reading replies stalls its reader at the window —
//!   its own writes eventually block on the kernel buffers — instead of
//!   growing the reply rail. Nothing buffers without bound.
//! * **Ordering** — the reader stamps every accepted frame with a
//!   per-connection sequence number; the reply rail releases answers to
//!   the writer in exactly that order, so each connection reads its
//!   responses in the order it wrote its requests (rejections
//!   included).
//! * **Graceful drain** — [`NetServer::shutdown`] stops accepting new
//!   connections, lets every reader finish the data already in flight
//!   (a reader only exits at a frame boundary once its socket goes
//!   idle, so no fully-received frame is dropped), lets the workers
//!   drain their queues, and joins every thread. Every frame read off a
//!   socket gets exactly one response envelope. A connection that fails
//!   setup (e.g. the socket cannot be cloned for the writer half) is
//!   answered with one deterministic error envelope and counted, never
//!   dropped silently. The drain is deadline-bounded
//!   ([`NetConfig::drain_timeout`]): a client that stops reading its
//!   replies mid-drain is abandoned once its connection makes no write
//!   progress for that long, instead of hanging the shutdown.
//! * **Observability** — per-worker queue depths are kept as atomic
//!   gauges and every reader/writer bumps the server's
//!   [`TransportStats`] (bytes and syscalls each way, frames per read,
//!   frames per writer flush); a [`crate::Query::Stats`] frame is
//!   answered with [`crate::ZigzagService::stats_with_net`], so the
//!   histogram, cache counters, queue depths and transport amortization
//!   are all readable *from the wire*.
//!
//! # Example
//!
//! ```no_run
//! use std::net::TcpStream;
//! use std::sync::Arc;
//! use zigzag_api::net::{read_envelope, write_envelope, NetConfig, NetServer};
//! use zigzag_api::{serve, Query, SessionId, ZigzagService};
//!
//! # fn main() -> std::io::Result<()> {
//! let service = Arc::new(ZigzagService::new());
//! let server = NetServer::bind_tcp("127.0.0.1:0", Arc::clone(&service), NetConfig::new())?;
//! let addr = server.local_addr().unwrap();
//!
//! let mut conn = TcpStream::connect(addr)?;
//! conn.set_nodelay(true)?; // mirror the server: no Nagle stall on small frames
//! let frame = serve::encode_frame(SessionId::from_raw(0), &Query::Stats);
//! write_envelope(&mut conn, &frame)?;
//! let answer = read_envelope(&mut conn, 1 << 20)?.unwrap();
//! println!("{answer}");
//!
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::config::NetConfig;
use crate::error::Error;
use crate::fault::{FaultPlan, NetFault};
use crate::serve;
use crate::service::ZigzagService;
use crate::stats::{TransportCounters, TransportStats};

/// Writes one length-delimited envelope: 4-byte big-endian length, then
/// the document bytes — the one-at-a-time client-side sending half of
/// the transport. A pipelining client batches instead: accumulate
/// several envelopes with [`encode_envelope_into`] and write the buffer
/// once.
///
/// # Errors
///
/// Fails on the underlying write, or if `doc` exceeds `u32::MAX` bytes.
pub fn write_envelope<W: Write>(w: &mut W, doc: &str) -> io::Result<()> {
    let len = u32::try_from(doc.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "document exceeds the u32 envelope length",
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(doc.as_bytes())?;
    w.flush()
}

/// Appends one length-delimited envelope to `buf` — the batching form
/// of [`write_envelope`]: a client pipelining N frames encodes them all
/// into one buffer and pays one `write` syscall, the shape the server's
/// readers amortize best (see [`TransportCounters`]).
///
/// # Errors
///
/// Fails if `doc` exceeds `u32::MAX` bytes; `buf` is unchanged then.
pub fn encode_envelope_into(buf: &mut Vec<u8>, doc: &str) -> io::Result<()> {
    let len = u32::try_from(doc.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "document exceeds the u32 envelope length",
        )
    })?;
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(doc.as_bytes());
    Ok(())
}

/// Reads one length-delimited envelope, returning `None` on a clean EOF
/// at an envelope boundary — the one-at-a-time client-side receiving
/// half of the transport (allocating a `String` per envelope; a
/// pipelining client reads through a reusable [`EnvelopeScanner`]
/// instead). `max_len` bounds the accepted payload (the declared length
/// is checked before any allocation).
///
/// # Errors
///
/// Fails on the underlying read, on EOF mid-envelope, on a declared
/// length above `max_len`, or on non-UTF-8 payload bytes.
pub fn read_envelope<R: Read>(r: &mut R, max_len: usize) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside an envelope header",
                ))
            };
        }
        filled += n;
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("envelope length {len} exceeds the {max_len}-byte bound"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "envelope is not UTF-8"))
}

/// Why an [`EnvelopeScanner`] refused the stream. Both are
/// unrecoverable for the connection: after either, the byte stream can
/// no longer be re-synchronized to an envelope boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanError {
    /// An envelope header declared `len` payload bytes against a
    /// `max`-byte bound. Raised *before* any buffer growth: a hostile
    /// header cannot make the scanner allocate.
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The configured bound it exceeded.
        max: usize,
    },
    /// A complete envelope's payload is not valid UTF-8.
    NotUtf8,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Oversized { len, max } => {
                write!(f, "envelope length {len} exceeds the {max}-byte bound")
            }
            ScanError::NotUtf8 => f.write_str("envelope is not UTF-8"),
        }
    }
}

impl std::error::Error for ScanError {}

impl From<ScanError> for io::Error {
    fn from(e: ScanError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// A reusable buffer that turns a byte stream into length-delimited
/// envelope documents without per-frame allocation: large reads are
/// slurped into a growable scratch buffer ([`EnvelopeScanner::fill_from`],
/// one syscall each) and complete frames are scanned out of it as
/// borrowed `&str` slices ([`EnvelopeScanner::next`]), with envelopes
/// split across arbitrary read boundaries reassembled in place. The
/// buffer grows to the high-water mark of `read_chunk + largest frame`
/// and is then reused forever — the steady state performs no heap
/// allocation (pinned by `tests/netalloc.rs`) and no copies beyond the
/// kernel's.
///
/// The server's per-connection readers run on this; it is public so
/// pipelining *clients* can read reply streams the same way (see the
/// README's pipelining example and `benches/net.rs`).
#[derive(Debug)]
pub struct EnvelopeScanner {
    /// Scratch storage; always fully initialized to its length.
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// One past the last filled byte.
    end: usize,
    /// Largest accepted payload; checked before any growth.
    max_frame: usize,
    /// Spare room each fill guarantees — the per-syscall slurp size.
    chunk: usize,
}

impl EnvelopeScanner {
    /// A scanner accepting payloads up to `max_frame_bytes`, slurping
    /// up to 64 KiB per fill.
    pub fn new(max_frame_bytes: usize) -> Self {
        EnvelopeScanner::with_chunk(max_frame_bytes, 64 << 10)
    }

    /// A scanner with an explicit per-fill slurp size (clamped to at
    /// least 16 bytes). Nothing is allocated until the first fill.
    pub fn with_chunk(max_frame_bytes: usize, read_chunk_bytes: usize) -> Self {
        EnvelopeScanner {
            buf: Vec::new(),
            start: 0,
            end: 0,
            max_frame: max_frame_bytes,
            chunk: read_chunk_bytes.max(16),
        }
    }

    /// Whether the scanner holds no bytes at all — i.e. the stream is
    /// at an envelope boundary and an EOF now would be clean.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Bytes buffered but not yet scanned out (a nonzero value at EOF
    /// means the peer truncated mid-envelope).
    pub fn pending_bytes(&self) -> usize {
        self.end - self.start
    }

    /// Current scratch-buffer size, in bytes — exposed so tests can pin
    /// that hostile headers are rejected *before* any growth.
    pub fn buffer_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The declared payload length at the front of the buffer, if a
    /// complete header is available.
    fn declared_len(&self) -> Option<usize> {
        if self.pending_bytes() < 4 {
            return None;
        }
        let header: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4 pending bytes");
        Some(u32::from_be_bytes(header) as usize)
    }

    /// Classifies the buffered bytes without handing out a borrow:
    /// `Ok(true)` iff [`EnvelopeScanner::next`] would yield a frame (or
    /// a UTF-8 refusal) right now.
    fn frame_buffered(&self) -> Result<bool, ScanError> {
        match self.declared_len() {
            None => Ok(false),
            Some(len) if len > self.max_frame => Err(ScanError::Oversized {
                len,
                max: self.max_frame,
            }),
            Some(len) => Ok(self.pending_bytes() - 4 >= len),
        }
    }

    /// Makes room for the next fill: at least `chunk` spare bytes, plus
    /// whatever a partially received frame still needs — compacting the
    /// consumed prefix away first, growing only to the high-water mark.
    /// Called only with no borrow outstanding, and only after the
    /// declared length (if visible) passed the bound check.
    fn make_room(&mut self) {
        let pending = self.end - self.start;
        // How much more the frame at the front still needs, beyond what
        // is already buffered (0 if no complete header yet).
        let frame_deficit = self
            .declared_len()
            .map_or(0, |len| (len + 4).saturating_sub(pending));
        let need = self.chunk.max(frame_deficit);
        if self.buf.len() - self.end >= need {
            return;
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end = pending;
            self.start = 0;
        }
        if self.buf.len() - self.end < need {
            self.buf.resize(self.end + need, 0);
        }
    }

    /// Performs **one** read into the buffer (growing it only as the
    /// validated frame at the front requires) and returns the byte
    /// count — `Ok(0)` is the peer's EOF. Every read-side error of `r`
    /// (including `WouldBlock` timeouts) is propagated untouched, so
    /// callers keep their own retry/shutdown policy.
    ///
    /// # Errors
    ///
    /// Whatever `r.read` fails with.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        // A hostile declared length must be refused by `next` before
        // the buffer grows toward it; never make room for one.
        if !matches!(self.declared_len(), Some(len) if len > self.max_frame) {
            self.make_room();
        }
        if self.buf.len() == self.end {
            // Oversized frame pending refusal: read nothing for it.
            return Ok(0);
        }
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Scans the next complete envelope out of the buffer as a borrowed
    /// document slice (valid until the next scanner call), `Ok(None)`
    /// if more bytes are needed first.
    ///
    /// # Errors
    ///
    /// [`ScanError::Oversized`] if the frame at the front declares a
    /// payload above the bound — raised before any allocation — and
    /// [`ScanError::NotUtf8`] if a complete payload is not UTF-8.
    // Not `Iterator`: each item borrows the scanner's buffer (a lending
    // iterator), which the trait's `next` signature cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<&str>, ScanError> {
        if !self.frame_buffered()? {
            return Ok(None);
        }
        let len = self.declared_len().expect("frame_buffered saw a header");
        let doc_start = self.start + 4;
        self.start = doc_start + len;
        match std::str::from_utf8(&self.buf[doc_start..doc_start + len]) {
            Ok(doc) => Ok(Some(doc)),
            Err(_) => Err(ScanError::NotUtf8),
        }
    }

    /// Blocking client-side receive: fills from `r` until one complete
    /// envelope is buffered and returns it borrowed; `Ok(None)` on a
    /// clean EOF at an envelope boundary.
    ///
    /// # Errors
    ///
    /// Fails on the underlying read, on EOF mid-envelope, and on
    /// oversized or non-UTF-8 envelopes (as [`io::ErrorKind::InvalidData`]).
    pub fn recv<R: Read>(&mut self, r: &mut R) -> io::Result<Option<&str>> {
        loop {
            if self.frame_buffered()? {
                break;
            }
            let n = self.fill_from(r)?;
            if n == 0 {
                return if self.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside an envelope",
                    ))
                };
            }
        }
        match self.next()? {
            Some(doc) => Ok(Some(doc)),
            None => Err(io::Error::other("scanner lost a buffered frame")),
        }
    }
}

/// One accepted frame on its way to a worker. The document buffer is
/// pooled: it came from the server's [`BufPool`] and the worker returns
/// it there after decoding.
struct Job {
    frame: String,
    /// Arrival position on its connection; the reply rail orders by it.
    seq: u64,
    /// The connection's reply rail.
    rail: Arc<ReplyRail>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("seq", &self.seq).finish()
    }
}

/// A shared pool of recycled `String` buffers: frame documents travel
/// reader → worker → pool, response documents worker → writer → pool,
/// so the steady state allocates nothing. Bounded so a burst cannot pin
/// memory forever.
#[derive(Debug, Default)]
struct BufPool {
    bufs: Mutex<Vec<String>>,
}

/// Most buffers the pool retains; beyond this, returned buffers are
/// simply dropped (in-flight count is transient burst state).
const MAX_POOLED_BUFS: usize = 1024;

impl BufPool {
    /// An empty (cleared, capacity-retaining) buffer.
    fn get(&self) -> String {
        self.bufs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, mut s: String) {
        s.clear();
        let mut bufs = self.bufs.lock().unwrap_or_else(PoisonError::into_inner);
        if bufs.len() < MAX_POOLED_BUFS {
            bufs.push(s);
        }
    }
}

/// One sequenced answer waiting on a connection's reply rail. Ordered
/// by sequence number alone (each is pushed exactly once).
struct SeqDoc {
    seq: u64,
    doc: String,
}

impl PartialEq for SeqDoc {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for SeqDoc {}
impl PartialOrd for SeqDoc {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SeqDoc {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.seq.cmp(&other.seq)
    }
}

/// The per-connection reply rail: workers (and the reader's direct
/// rejections) push `(seq, document)` answers; the writer takes, per
/// wakeup, **every** answer that is ready in arrival order — the unit
/// of write coalescing. Replaces PR 7's per-frame channel send +
/// `BTreeMap` reorder with one heap under one lock, allocation-free
/// when warm.
struct ReplyRail {
    inner: Mutex<RailInner>,
    ready: Condvar,
    /// Signalled when the writer advances `next` — what a reader blocked
    /// on the in-flight window ([`ReplyRail::wait_window`]) waits for.
    released: Condvar,
}

struct RailInner {
    /// Answers not yet released, min-heap by sequence.
    pending: BinaryHeap<Reverse<SeqDoc>>,
    /// The next sequence number the writer will release.
    next: u64,
    /// Total sequence numbers the reader issued; meaningful once
    /// `closed`.
    issued: u64,
    /// The reader is done issuing sequence numbers.
    closed: bool,
}

impl ReplyRail {
    fn new() -> Self {
        ReplyRail {
            inner: Mutex::new(RailInner {
                pending: BinaryHeap::new(),
                next: 0,
                issued: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            released: Condvar::new(),
        }
    }

    /// Blocks until issuing sequence number `seq` would keep fewer than
    /// `window` answers outstanding (`seq - next < window`), or until
    /// `timeout` elapses with the window still full — the reader's
    /// backpressure gate. A client that pipelines frames without
    /// reading its replies stalls its reader here (so its own writes
    /// eventually block on the kernel buffers) instead of growing the
    /// pending heap without bound. Returns whether there is room.
    fn wait_window(&self, seq: u64, window: u64, timeout: Duration) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if seq - inner.next < window {
                return true;
            }
            let (guard, wait) = self
                .released
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() && seq - inner.next >= window {
                return false;
            }
        }
    }

    /// Delivers the answer for sequence `seq` (exactly one per issued
    /// sequence number — the drain guarantee's bookkeeping). The writer
    /// is woken only when this answer is the one it is blocked on: an
    /// out-of-order answer cannot unblock it, and skipping the wake
    /// keeps in-order bursts from paying one futex syscall per reply.
    fn push(&self, seq: u64, doc: String) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let head = seq == inner.next;
        inner.pending.push(Reverse(SeqDoc { seq, doc }));
        drop(inner);
        if head {
            self.ready.notify_one();
        }
    }

    /// The reader is done: `issued` sequence numbers exist in total.
    /// Once all of them have been released the writer exits.
    fn close(&self, issued: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        inner.issued = issued;
        drop(inner);
        self.ready.notify_one();
    }

    /// Blocks until at least one in-order answer is ready, then moves
    /// **all** answers that are ready in arrival order into `batch`
    /// (cleared first is the caller's job). Returns `false` — without
    /// touching `batch` — once the rail is closed and fully drained.
    fn pop_ready(&self, batch: &mut Vec<String>) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            while inner
                .pending
                .peek()
                .is_some_and(|Reverse(sd)| sd.seq == inner.next)
            {
                let Reverse(sd) = inner.pending.pop().expect("peeked");
                batch.push(sd.doc);
                inner.next += 1;
            }
            if !batch.is_empty() {
                // `next` advanced: a reader stalled on the in-flight
                // window may now have room.
                self.released.notify_one();
                return true;
            }
            if inner.closed && inner.next >= inner.issued {
                return false;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Either stream transport, behind one read/write surface.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Bounds one blocking `write` (`SO_SNDTIMEO`). Set per *socket*,
    /// not per handle — but only the writer half ever writes, so giving
    /// its stalls a poll cadence does not perturb the reader.
    fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(d),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(nb),
        }
    }

    /// Disables Nagle on TCP so coalesced writes leave immediately;
    /// Unix sockets have no Nagle and accept trivially.
    fn set_nodelay(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nodelay(true),
            #[cfg(unix)]
            Conn::Unix(_) => Ok(()),
        }
    }

    /// Tears the connection down both ways: the client observes EOF and
    /// the reader half (a clone of the same socket) unblocks with
    /// `Ok(0)` — how a writer that can no longer keep the stream in
    /// sync closes out instead of leaving the peer waiting forever.
    fn shutdown_both(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A [`Conn`] half that bills every `read`/`write` call and its byte
/// count to the server's [`TransportStats`] — the source of the
/// syscalls-per-frame ratios [`crate::Query::Stats`] reports. Timeout
/// and error returns still count the call (they were syscalls).
///
/// This is also the chaos seam: when a [`FaultPlan`] is armed
/// ([`NetConfig::faults`]), each call first consults the plan — a
/// `Short` fault caps the operation at one byte (a legal partial I/O
/// every caller must already tolerate), a `Reset` returns an injected
/// `ConnectionReset` without touching the socket, and a `Delay` sleeps
/// before proceeding. Injected resets are *not* billed as syscalls
/// (they never reached the kernel). Disarmed, the hook is one
/// never-taken branch per call.
struct CountedConn {
    conn: Conn,
    stats: Arc<TransportStats>,
    faults: Option<Arc<FaultPlan>>,
}

impl Read for CountedConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut buf = buf;
        if let Some(plan) = &self.faults {
            match plan.on_net_read() {
                NetFault::None => {}
                NetFault::Short => {
                    if !buf.is_empty() {
                        buf = &mut buf[..1];
                    }
                }
                NetFault::Reset => return Err(FaultPlan::reset_error()),
                NetFault::Delay(d) => std::thread::sleep(d),
            }
        }
        self.stats.read_syscalls.fetch_add(1, Ordering::Relaxed);
        let n = self.conn.read(buf)?;
        self.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Write for CountedConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut buf = buf;
        if let Some(plan) = &self.faults {
            match plan.on_net_write() {
                NetFault::None => {}
                NetFault::Short => {
                    if !buf.is_empty() {
                        buf = &buf[..1];
                    }
                }
                NetFault::Reset => return Err(FaultPlan::reset_error()),
                NetFault::Delay(d) => std::thread::sleep(d),
            }
        }
        self.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
        let n = self.conn.write(buf)?;
        self.stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.conn.flush()
    }
}

/// Either listening transport.
#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        Ok(match self {
            Listener::Tcp(l) => Conn::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
        })
    }

    /// A second handle to the same underlying socket — kept by
    /// [`NetServer`] so `stop` can flip the listener nonblocking even
    /// though the accept loop owns this one.
    fn try_clone(&self) -> io::Result<Listener> {
        Ok(match self {
            Listener::Tcp(l) => Listener::Tcp(l.try_clone()?),
            #[cfg(unix)]
            Listener::Unix(l) => Listener::Unix(l.try_clone()?),
        })
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }
}

/// Routes one accepted frame into its owning worker's bounded queue, or
/// rejects it in place with a deterministic error document on the reply
/// rail. The gauge is raised before the send and lowered again on
/// rejection, so it never under-counts a queued frame; a rejected
/// frame's buffer goes straight back to the pool.
fn route_frame(
    service: &ZigzagService,
    txs: &[SyncSender<Job>],
    depths: &[AtomicUsize],
    pool: &BufPool,
    frame: String,
    seq: u64,
    rail: &Arc<ReplyRail>,
) {
    let worker = serve::owner_of(service, &frame, txs.len());
    depths[worker].fetch_add(1, Ordering::Relaxed);
    match txs[worker].try_send(Job {
        frame,
        seq,
        rail: Arc::clone(rail),
    }) {
        Ok(()) => {}
        Err(err) => {
            depths[worker].fetch_sub(1, Ordering::Relaxed);
            let (e, job) = match err {
                TrySendError::Full(job) => (Error::Overloaded { worker }, job),
                TrySendError::Disconnected(job) => (
                    Error::Internal {
                        detail: format!("worker {worker} queue closed"),
                    },
                    job,
                ),
            };
            pool.put(job.frame);
            rail.push(seq, serve::encode_error(&e));
        }
    }
}

/// The per-connection reader: slurps large reads into its
/// [`EnvelopeScanner`], routes every complete frame in the buffer
/// (stamped with arrival sequence numbers) before the next syscall, and
/// closes the rail with the issued total so the writer can drain.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    mut conn: CountedConn,
    service: Arc<ZigzagService>,
    txs: Vec<SyncSender<Job>>,
    depths: Arc<Vec<AtomicUsize>>,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    rail: Arc<ReplyRail>,
    pool: Arc<BufPool>,
) {
    let stats = Arc::clone(&conn.stats);
    let mut scanner = EnvelopeScanner::with_chunk(config.max_frame_bytes, config.read_chunk_bytes);
    let window = config.max_inflight_frames.max(1) as u64;
    let mut seq = 0u64;
    'serve: loop {
        // Drain every complete envelope already buffered before paying
        // for another syscall — the read-side amortization.
        loop {
            match scanner.next() {
                Ok(Some(frame)) => {
                    // Backpressure: never hold more than the in-flight
                    // window of answers for a client that is not
                    // reading them — stall here until the writer
                    // releases room (its progress is the client's
                    // reads), re-checking shutdown on the poll cadence.
                    while !rail.wait_window(seq, window, config.poll_interval) {
                        if shutdown.load(Ordering::Relaxed) {
                            // Draining, and the client still is not
                            // consuming replies: answer this frame's
                            // slot deterministically and give up on the
                            // connection rather than stall the drain.
                            let err = Error::Internal {
                                detail: format!(
                                    "connection exceeded its {window}-frame in-flight window \
                                     during shutdown"
                                ),
                            };
                            rail.push(seq, serve::encode_error(&err));
                            seq += 1;
                            break 'serve;
                        }
                    }
                    stats.frames_in.fetch_add(1, Ordering::Relaxed);
                    let mut owned = pool.get();
                    owned.push_str(frame);
                    route_frame(&service, &txs, &depths, &pool, owned, seq, &rail);
                    seq += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    // Unrecoverable stream: one deterministic error
                    // envelope in this frame's arrival slot, then close.
                    let err = Error::Wire {
                        line: 0,
                        detail: match e {
                            ScanError::Oversized { len, max } => format!(
                                "frame envelope of {len} bytes exceeds the {max}-byte bound"
                            ),
                            ScanError::NotUtf8 => "frame envelope is not valid UTF-8".into(),
                        },
                    };
                    rail.push(seq, serve::encode_error(&err));
                    seq += 1;
                    break 'serve;
                }
            }
        }
        match scanner.fill_from(&mut conn) {
            // EOF: clean at a boundary; mid-envelope the partial frame
            // was never fully received, so it was never accepted.
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The drain rule: data still flowing keeps the reader
                // alive past shutdown; the first *idle* timeout after
                // the flag ends it. Complete frames were all routed
                // above, so at most a partial envelope is abandoned.
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Closing the rail with the issued total lets the writer exit once
    // every in-flight answer for this connection has been delivered —
    // the drain guarantee.
    rail.close(seq);
}

/// The per-connection writer: per rail wakeup, takes **every** answer
/// that is ready in arrival order and writes the whole run as batched
/// envelopes — one coalesced `write` per [`NetConfig::write_coalesce_bytes`]
/// accumulated, one flush per wakeup. Each document buffer is recycled
/// the moment its bytes are copied into the batch, *before* they reach
/// the socket, so a client reacting instantly to an answer finds warm
/// pool buffers waiting instead of racing this thread for the return.
/// A write failure or an unframeable (>4 GiB) document flips `broken`:
/// the stream can no longer be kept in sync, so the connection is shut
/// down both ways — the client observes EOF instead of waiting forever
/// for replies that will never arrive, and this connection's reader
/// unblocks with `Ok(0)` and exits. The rail is still drained (the
/// drain guarantee is about answering, the bookkeeping must complete)
/// but nothing more is written.
///
/// Writes are stall-bounded during a drain: each `write` carries the
/// poll-interval `SO_SNDTIMEO` set by [`prepare_connection`], and
/// [`write_all_bounded`] retries timeouts forever in normal operation
/// but gives up — breaking the connection — once the server is shutting
/// down and the client has made no progress for
/// [`NetConfig::drain_timeout`]. A client that stops reading mid-drain
/// therefore bounds the shutdown instead of hanging it.
fn writer_loop(
    mut conn: CountedConn,
    rail: Arc<ReplyRail>,
    pool: Arc<BufPool>,
    coalesce_bytes: usize,
    shutdown: Arc<AtomicBool>,
    drain_timeout: Option<Duration>,
) {
    let stats = Arc::clone(&conn.stats);
    let coalesce = coalesce_bytes.max(16);
    let mut batch: Vec<String> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut broken = false;
    let mut torn_down = false;
    while rail.pop_ready(&mut batch) {
        out.clear();
        let mut delivered = false;
        for doc in batch.drain(..) {
            if !broken {
                match u32::try_from(doc.len()) {
                    Ok(len) => {
                        out.extend_from_slice(&len.to_be_bytes());
                        out.extend_from_slice(doc.as_bytes());
                        // Counted *before* the bytes can reach the
                        // client, so any counter snapshot taken after
                        // reading a reply already includes that reply.
                        stats.frames_out.fetch_add(1, Ordering::Relaxed);
                        delivered = true;
                    }
                    // A >4 GiB document cannot be framed; the stream
                    // cannot be re-synchronized past it.
                    Err(_) => broken = true,
                }
            }
            // Recycle *before* the bytes go out: once the client reads
            // this answer it may immediately send its next frame, and
            // the reader and worker must find warm buffers in the pool
            // rather than racing this thread for the return.
            pool.put(doc);
            if !broken && out.len() >= coalesce {
                if write_all_bounded(&mut conn, &out, &shutdown, drain_timeout).is_err() {
                    broken = true;
                }
                out.clear();
            }
        }
        if !broken && delivered {
            // Same ordering rule as the per-reply count above.
            stats.writer_flushes.fetch_add(1, Ordering::Relaxed);
        }
        if !broken
            && !out.is_empty()
            && write_all_bounded(&mut conn, &out, &shutdown, drain_timeout).is_err()
        {
            broken = true;
        }
        if !broken && conn.flush().is_err() {
            broken = true;
        }
        if broken && !torn_down {
            // The stream cannot be re-synchronized: close the socket so
            // the client sees EOF promptly (and our reader exits)
            // rather than a connection that silently stopped answering.
            torn_down = true;
            let _ = conn.conn.shutdown_both();
        }
    }
}

/// Writes all of `buf`, retrying the poll-cadence write timeouts — but
/// only while the drain deadline allows. In normal operation a full
/// kernel buffer (a client not reading its replies) stalls here
/// indefinitely, exactly like the old blocking `write_all`; once
/// `shutdown` is set, a stall that makes no progress for `drain_timeout`
/// (when bounded) gives up with `TimedOut` so a dead client cannot hang
/// [`NetServer::shutdown`]. Any byte of progress resets the stall clock.
fn write_all_bounded(
    conn: &mut CountedConn,
    buf: &[u8],
    shutdown: &AtomicBool,
    drain_timeout: Option<Duration>,
) -> io::Result<()> {
    let mut rest = buf;
    let mut stalled_since: Option<Instant> = None;
    while !rest.is_empty() {
        match conn.write(rest) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                stalled_since = None;
                rest = &rest[n..];
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let since = *stalled_since.get_or_insert_with(Instant::now);
                if shutdown.load(Ordering::Relaxed)
                    && drain_timeout.is_some_and(|limit| since.elapsed() >= limit)
                {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "connection made no write progress within the shutdown drain deadline",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Applies the per-connection socket options and clones the writer
/// half. Any failure aborts setup — the caller then refuses the
/// connection loudly instead of dropping it.
fn prepare_connection(conn: &Conn, poll_interval: Duration) -> io::Result<Conn> {
    // Accepted sockets may inherit the listener's non-blocking mode on
    // some platforms; readers use plain timeouts instead.
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(poll_interval))?;
    // The write timeout is the drain deadline's probe cadence: writer
    // stalls surface as `TimedOut` every poll interval instead of
    // blocking forever, so `write_all_bounded` can check the shutdown
    // flag between retries.
    conn.set_write_timeout(Some(poll_interval))?;
    conn.set_nodelay()?;
    conn.try_clone()
}

/// Answers a connection that failed setup with one deterministic error
/// envelope (best-effort — the socket may be the broken part) and
/// counts it, so a failed `try_clone` is observable instead of a
/// silently vanished connection.
fn refuse_connection<W: Write>(conn: &mut W, stats: &TransportStats) {
    stats.conn_failures.fetch_add(1, Ordering::Relaxed);
    let doc = serve::encode_error(&Error::Internal {
        detail: "connection setup failed; closing before serving any frame".into(),
    });
    let _ = write_envelope(conn, &doc);
}

/// The accept loop: **blocking** accepts — a fresh connection is served
/// the instant the kernel hands it over, with no poll-interval latency
/// in the connection path. [`NetServer::stop`] unblocks the loop by
/// flipping the shutdown flag and making one throwaway connection to
/// the listener itself; the loop drops any connection accepted after
/// the flag (including that dummy) and exits.
#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: Listener,
    service: Arc<ZigzagService>,
    txs: Vec<SyncSender<Job>>,
    depths: Arc<Vec<AtomicUsize>>,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pool: Arc<BufPool>,
    stats: Arc<TransportStats>,
) {
    loop {
        match listener.accept() {
            Ok(_) | Err(_) if shutdown.load(Ordering::Relaxed) => break,
            Ok(mut conn) => {
                let writer_conn = match prepare_connection(&conn, config.poll_interval) {
                    Ok(c) => c,
                    Err(_) => {
                        refuse_connection(&mut conn, &stats);
                        continue;
                    }
                };
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let rail = Arc::new(ReplyRail::new());
                let writer = {
                    let conn = CountedConn {
                        conn: writer_conn,
                        stats: Arc::clone(&stats),
                        faults: config.faults.clone(),
                    };
                    let rail = Arc::clone(&rail);
                    let pool = Arc::clone(&pool);
                    let coalesce = config.write_coalesce_bytes;
                    let shutdown = Arc::clone(&shutdown);
                    let drain = config.drain_timeout;
                    std::thread::spawn(move || {
                        writer_loop(conn, rail, pool, coalesce, shutdown, drain)
                    })
                };
                let reader = {
                    let conn = CountedConn {
                        conn,
                        stats: Arc::clone(&stats),
                        faults: config.faults.clone(),
                    };
                    let service = Arc::clone(&service);
                    let txs = txs.clone();
                    let depths = Arc::clone(&depths);
                    let shutdown = Arc::clone(&shutdown);
                    let config = config.clone();
                    let pool = Arc::clone(&pool);
                    std::thread::spawn(move || {
                        reader_loop(conn, service, txs, depths, config, shutdown, rail, pool)
                    })
                };
                let mut handles = conns.lock().unwrap_or_else(PoisonError::into_inner);
                // Reap connections that already finished so the handle
                // vector tracks *live* connections, not total churn.
                handles.retain(|h| !h.is_finished());
                handles.push(reader);
                handles.push(writer);
            }
            // Transient accept failures (EINTR, a connection aborted in
            // the backlog); a brief pause avoids a hot error loop.
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// A running socket server over a [`ZigzagService`]; see the
/// [module docs](self) for the protocol and serving guarantees.
///
/// Dropping the server performs the same graceful drain as
/// [`NetServer::shutdown`].
#[derive(Debug)]
pub struct NetServer {
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    worker_txs: Vec<SyncSender<Job>>,
    transport: Arc<TransportStats>,
    /// A clone of the listening socket, kept so `stop` can flip it
    /// nonblocking — the wake path that does not depend on the host
    /// being able to connect to its own bind address.
    wake: Option<Listener>,
    tcp_addr: Option<SocketAddr>,
    #[cfg(unix)]
    unix_path: Option<PathBuf>,
}

impl NetServer {
    /// Binds a TCP listener (use port 0 for an ephemeral port, then
    /// [`NetServer::local_addr`]) and starts serving `service`.
    /// Accepted sockets get `TCP_NODELAY`; clients should set it too
    /// (see the module example).
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or the threads cannot spawn.
    pub fn bind_tcp<A: ToSocketAddrs>(
        addr: A,
        service: Arc<ZigzagService>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut server = NetServer::start(Listener::Tcp(listener), service, config)?;
        server.tcp_addr = Some(local);
        Ok(server)
    }

    /// Binds a Unix-domain socket at `path` (which must not already
    /// exist; it is unlinked again on shutdown) and starts serving
    /// `service`.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be bound or the threads cannot spawn.
    #[cfg(unix)]
    pub fn bind_unix<P: AsRef<Path>>(
        path: P,
        service: Arc<ZigzagService>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let path = path.as_ref().to_path_buf();
        let listener = UnixListener::bind(&path)?;
        let mut server = NetServer::start(Listener::Unix(listener), service, config)?;
        server.unix_path = Some(path);
        Ok(server)
    }

    fn start(
        listener: Listener,
        service: Arc<ZigzagService>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let worker_count = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let depths: Arc<Vec<AtomicUsize>> =
            Arc::new((0..worker_count).map(|_| AtomicUsize::new(0)).collect());
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(BufPool::default());
        let transport = Arc::new(TransportStats::new());
        let mut worker_txs = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for w in 0..worker_count {
            let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
            worker_txs.push(tx);
            let service = Arc::clone(&service);
            let depths = Arc::clone(&depths);
            let pool = Arc::clone(&pool);
            let transport = Arc::clone(&transport);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("zigzag-net-worker-{w}"))
                    .spawn(move || {
                        // The memo map is recycled across jobs but
                        // cleared per job: a session closed between two
                        // frames must answer the second with
                        // UnknownSession, not be served stale.
                        let mut memo = HashMap::new();
                        while let Ok(job) = rx.recv() {
                            depths[w].fetch_sub(1, Ordering::Relaxed);
                            memo.clear();
                            let mut out = pool.get();
                            serve::respond_into(
                                &service,
                                &job.frame,
                                &mut memo,
                                Some(&serve::NetView {
                                    queues: &depths,
                                    transport: &transport,
                                }),
                                &mut out,
                            );
                            pool.put(job.frame);
                            job.rail.push(job.seq, out);
                        }
                    })?,
            );
        }
        let conns = Arc::new(Mutex::new(Vec::new()));
        let wake = listener.try_clone().ok();
        let accept = {
            let service = Arc::clone(&service);
            let txs = worker_txs.clone();
            let depths = Arc::clone(&depths);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let pool = Arc::clone(&pool);
            let stats = Arc::clone(&transport);
            std::thread::Builder::new()
                .name("zigzag-net-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener, service, txs, depths, config, shutdown, conns, pool, stats,
                    )
                })?
        };
        Ok(NetServer {
            shutdown,
            accept: Some(accept),
            conns,
            workers,
            worker_txs,
            transport,
            wake,
            tcp_addr: None,
            #[cfg(unix)]
            unix_path: None,
        })
    }

    /// The bound TCP address (`None` for Unix-socket servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// A point-in-time snapshot of the server's transport counters —
    /// the same numbers a wire [`crate::Query::Stats`] frame reports.
    pub fn transport(&self) -> TransportCounters {
        self.transport.snapshot()
    }

    /// Gracefully drains and stops the server: no new connections are
    /// accepted, every frame already read off a socket is answered,
    /// worker queues are drained, all threads are joined, and (for Unix
    /// servers) the socket file is unlinked.
    ///
    /// Delivery blocks on the clients, but only up to
    /// [`NetConfig::drain_timeout`]: a connection whose client stops
    /// reading holds its pending answers in the socket buffer, and the
    /// drain waits until they fit, the client goes away, or the deadline
    /// passes — after which outstanding slots are answered with
    /// deterministic [`Error::Internal`] envelopes where delivery is
    /// still possible and the connection is abandoned. With
    /// `drain_timeout: None` the drain waits forever (the pre-deadline
    /// behavior).
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Makes one best-effort throwaway connection to the listener to
    /// pop the accept loop out of its blocking `accept`. Wildcard binds
    /// (`0.0.0.0` / `::`) are not connectable addresses on every
    /// platform, so those aim at the loopback of the same family.
    fn wake_accept(&self) {
        if let Some(addr) = self.tcp_addr {
            let target = if addr.ip().is_unspecified() {
                let ip = if addr.is_ipv4() {
                    IpAddr::V4(Ipv4Addr::LOCALHOST)
                } else {
                    IpAddr::V6(Ipv6Addr::LOCALHOST)
                };
                SocketAddr::new(ip, addr.port())
            } else {
                addr
            };
            let _ = TcpStream::connect_timeout(&target, Duration::from_millis(100));
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            // The accept loop blocks in the kernel. Flip the listener
            // nonblocking first so any accept it *enters from now on*
            // returns immediately, then pop it out of the accept it may
            // already be parked in with a throwaway connection —
            // retrying on a short cadence until the thread exits, so
            // one failed wake connect degrades into a brief poll loop,
            // never a hung join.
            if let Some(wake) = &self.wake {
                let _ = wake.set_nonblocking(true);
            }
            loop {
                self.wake_accept();
                if h.is_finished() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
                if h.is_finished() {
                    break;
                }
            }
            let _ = h.join();
        }
        // Readers exit at their first idle frame boundary (answering
        // everything already in flight first); writers exit once every
        // answer for their connection has been delivered.
        let handles =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
        // With every reader gone, dropping the senders lets each worker
        // drain whatever is still queued and exit.
        self.worker_txs.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_round_trip_and_reject_hostile_lengths() {
        let mut buf = Vec::new();
        write_envelope(&mut buf, "hello\nworld\n").unwrap();
        assert_eq!(&buf[..4], &12u32.to_be_bytes());
        let mut r = io::Cursor::new(buf.clone());
        assert_eq!(
            read_envelope(&mut r, 1 << 10).unwrap().unwrap(),
            "hello\nworld\n"
        );
        // Clean EOF at a boundary is None, not an error.
        assert!(read_envelope(&mut r, 1 << 10).unwrap().is_none());
        // The batching encoder writes the same bytes as write_envelope.
        let mut batched = Vec::new();
        encode_envelope_into(&mut batched, "hello\nworld\n").unwrap();
        assert_eq!(batched, buf);

        // A declared length above the bound fails before allocation.
        let hostile = u32::MAX.to_be_bytes().to_vec();
        let err = read_envelope(&mut io::Cursor::new(hostile), 1 << 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncated header and truncated payload both fail loudly.
        let err = read_envelope(&mut io::Cursor::new(vec![0u8, 0]), 1 << 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let mut truncated = 8u32.to_be_bytes().to_vec();
        truncated.extend_from_slice(b"abc");
        assert!(read_envelope(&mut io::Cursor::new(truncated), 1 << 10).is_err());
        // Non-UTF-8 payloads are refused.
        let mut bad = 2u32.to_be_bytes().to_vec();
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(read_envelope(&mut io::Cursor::new(bad), 1 << 10).is_err());
    }

    #[test]
    fn scanner_matches_read_envelope_on_a_pipelined_stream() {
        let docs = ["first\n", "second frame\n", "", "third\nwith\nlines\n"];
        let mut bytes = Vec::new();
        for d in docs {
            encode_envelope_into(&mut bytes, d).unwrap();
        }
        let mut scanner = EnvelopeScanner::new(1 << 10);
        let mut r = io::Cursor::new(bytes);
        for d in docs {
            assert_eq!(scanner.recv(&mut r).unwrap(), Some(d));
        }
        assert_eq!(scanner.recv(&mut r).unwrap(), None);
        assert!(scanner.is_empty());
    }

    #[test]
    fn scanner_rejects_oversized_headers_before_growing() {
        let mut scanner = EnvelopeScanner::with_chunk(1 << 10, 64);
        let mut r = io::Cursor::new(u32::MAX.to_be_bytes().to_vec());
        assert!(scanner.fill_from(&mut r).unwrap() > 0);
        let grown_for_header = scanner.buffer_bytes();
        assert!(
            grown_for_header <= 64,
            "header fill grew past the chunk: {grown_for_header}"
        );
        assert_eq!(
            scanner.next(),
            Err(ScanError::Oversized {
                len: u32::MAX as usize,
                max: 1 << 10,
            })
        );
        // Even an explicit refill attempt will not grow toward the
        // hostile length.
        let _ = scanner.fill_from(&mut r);
        assert_eq!(scanner.buffer_bytes(), grown_for_header);
    }

    #[test]
    fn full_queues_reject_with_a_deterministic_overload_document() {
        // The real enqueue path against a capacity-1 queue nobody
        // drains: first frame queues, second is rejected in place.
        let service = ZigzagService::sharded(4);
        let (tx, _rx) = mpsc::sync_channel::<Job>(1);
        let txs = vec![tx];
        let depths = vec![AtomicUsize::new(0)];
        let pool = BufPool::default();
        let rail = Arc::new(ReplyRail::new());
        let frame = serve::encode_frame(
            crate::service::SessionId::from_raw(3),
            &crate::query::Query::CoordDecision,
        );
        route_frame(&service, &txs, &depths, &pool, frame.clone(), 0, &rail);
        assert_eq!(depths[0].load(Ordering::Relaxed), 1);
        route_frame(&service, &txs, &depths, &pool, frame, 1, &rail);
        assert_eq!(
            depths[0].load(Ordering::Relaxed),
            1,
            "rejected frame left in gauge"
        );
        // The rejected frame's answer sits in its arrival slot (seq 1);
        // seq 0 is still owed by the queued job, so nothing is ready.
        let inner = rail.inner.lock().unwrap();
        assert_eq!(inner.pending.len(), 1);
        let Reverse(sd) = inner.pending.peek().unwrap();
        assert_eq!(sd.seq, 1);
        assert!(serve::is_error_document(&sd.doc));
        assert_eq!(
            sd.doc,
            serve::encode_error(&Error::Overloaded { worker: 0 })
        );
    }

    #[test]
    fn refused_connections_answer_one_deterministic_envelope_and_count() {
        let stats = TransportStats::new();
        let mut sink = Vec::new();
        refuse_connection(&mut sink, &stats);
        assert_eq!(stats.conn_failures.load(Ordering::Relaxed), 1);
        let doc = read_envelope(&mut io::Cursor::new(sink), 1 << 16)
            .unwrap()
            .unwrap();
        assert!(serve::is_error_document(&doc), "{doc:?}");
        assert_eq!(
            doc,
            serve::encode_error(&Error::Internal {
                detail: "connection setup failed; closing before serving any frame".into(),
            })
        );
        // Refusing twice is deterministic and keeps counting.
        let mut again = Vec::new();
        refuse_connection(&mut again, &stats);
        assert_eq!(stats.conn_failures.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn reply_rail_releases_in_arrival_order_and_drains_on_close() {
        let rail = ReplyRail::new();
        rail.push(1, "b".into());
        rail.push(2, "c".into());
        let mut batch = Vec::new();
        // Nothing ready: seq 0 is missing. Push it from another thread
        // while pop_ready blocks.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                rail.push(0, "a".into());
            });
            assert!(rail.pop_ready(&mut batch));
        });
        // One wakeup released everything that became ready, in order.
        assert_eq!(batch, ["a", "b", "c"]);
        batch.clear();
        rail.push(3, "d".into());
        rail.close(5);
        assert!(rail.pop_ready(&mut batch));
        assert_eq!(batch, ["d"]);
        batch.clear();
        rail.push(4, "e".into());
        assert!(rail.pop_ready(&mut batch));
        assert_eq!(batch, ["e"]);
        batch.clear();
        // Closed and fully drained: the writer is told to exit.
        assert!(!rail.pop_ready(&mut batch));
        assert!(batch.is_empty());
    }

    #[test]
    fn reply_rail_window_stalls_full_connections_and_releases_on_drain() {
        let rail = ReplyRail::new();
        // Nothing outstanding: the first `window` sequences have room.
        assert!(rail.wait_window(0, 2, Duration::from_millis(1)));
        assert!(rail.wait_window(1, 2, Duration::from_millis(1)));
        // Issuing seq 2 would put 3 answers in flight against next=0:
        // the gate times out rather than admitting it.
        assert!(!rail.wait_window(2, 2, Duration::from_millis(5)));
        // The writer draining answers opens the window while a reader
        // is blocked on it.
        rail.push(0, "a".into());
        rail.push(1, "b".into());
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                let mut batch = Vec::new();
                assert!(rail.pop_ready(&mut batch));
                assert_eq!(batch, ["a", "b"]);
            });
            assert!(rail.wait_window(2, 2, Duration::from_secs(5)));
        });
    }
}
