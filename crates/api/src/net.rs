//! The socket front end: a TCP / Unix-socket accept loop feeding the
//! [`crate::serve`] frame path.
//!
//! [`crate::serve::serve`] answers a *batch* of frames in one call; a
//! [`NetServer`] serves the same frames off a stream transport, one
//! length-delimited envelope at a time, through the same per-frame code
//! path — so a socket client's responses are **byte-identical** to the
//! in-process loop's on the same frame sequence (pinned by
//! `tests/net.rs`).
//!
//! # Envelope
//!
//! Both directions carry `zigzag-frame v1` / `zigzag-response v1` /
//! `zigzag-error v1` documents in the length-delimited envelope
//! specified in [`crate::wire`]'s module docs: a 4-byte big-endian
//! length followed by that many bytes of UTF-8. [`write_envelope`] and
//! [`read_envelope`] are the client-side halves. An envelope whose
//! declared length exceeds [`NetConfig::max_frame_bytes`], or whose
//! bytes are not UTF-8, is answered with one `zigzag-error v1` envelope
//! and the connection is closed — the declared length is never trusted
//! before the bound check, so a hostile header cannot make the server
//! allocate.
//!
//! # Architecture
//!
//! ```text
//! accept loop ──▶ per-connection reader ──▶ bounded worker queues ──▶ workers
//!                        │ (routes by session shard)                    │
//!                        ▼                                              ▼
//!                per-connection writer ◀── (seq, document) ◀────────────┘
//! ```
//!
//! * **Session affinity** — each frame is routed to the worker owning
//!   its session's shard (the same `shard % workers` rule as
//!   [`crate::serve`]), and each worker processes its queue in FIFO
//!   order, so one session's frames are answered in arrival order no
//!   matter how many connections or workers exist.
//! * **Backpressure** — worker queues are bounded
//!   ([`NetConfig::queue_capacity`]). A frame arriving at a full queue
//!   is rejected *immediately* with a deterministic
//!   [`Error::Overloaded`] document in its arrival slot; nothing
//!   buffers without bound.
//! * **Ordering** — the reader stamps every accepted frame with a
//!   per-connection sequence number; the writer reorders worker answers
//!   by that sequence, so each connection reads its responses in
//!   exactly the order it wrote its requests (rejections included).
//! * **Graceful drain** — [`NetServer::shutdown`] stops accepting new
//!   connections, lets every reader finish the data already in flight
//!   (a reader only exits at a frame boundary once its socket goes
//!   idle, so no fully-received frame is dropped), lets the workers
//!   drain their queues, and joins every thread. Every frame read off a
//!   socket gets exactly one response envelope.
//! * **Observability** — per-worker queue depths are kept as atomic
//!   gauges; a [`crate::Query::Stats`] frame is answered with
//!   [`crate::ZigzagService::stats_with_queues`], so the histogram,
//!   cache counters and queue depths are all readable *from the wire*.
//!
//! # Example
//!
//! ```no_run
//! use std::net::TcpStream;
//! use std::sync::Arc;
//! use zigzag_api::net::{read_envelope, write_envelope, NetConfig, NetServer};
//! use zigzag_api::{serve, Query, SessionId, ZigzagService};
//!
//! # fn main() -> std::io::Result<()> {
//! let service = Arc::new(ZigzagService::new());
//! let server = NetServer::bind_tcp("127.0.0.1:0", Arc::clone(&service), NetConfig::new())?;
//! let addr = server.local_addr().unwrap();
//!
//! let mut conn = TcpStream::connect(addr)?;
//! let frame = serve::encode_frame(SessionId::from_raw(0), &Query::Stats);
//! write_envelope(&mut conn, &frame)?;
//! let answer = read_envelope(&mut conn, 1 << 20)?.unwrap();
//! println!("{answer}");
//!
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::Error;
use crate::serve;
use crate::service::ZigzagService;

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of dispatch workers (clamped to at least 1). Frames are
    /// routed to workers by session shard, exactly as in
    /// [`crate::serve::serve`].
    pub workers: usize,
    /// Bound on each worker's queue (clamped to at least 1). A frame
    /// arriving at a full queue is rejected with
    /// [`Error::Overloaded`].
    pub queue_capacity: usize,
    /// Largest accepted envelope payload, in bytes. A declared length
    /// above this is answered with an error envelope and the connection
    /// is closed, before any allocation.
    pub max_frame_bytes: usize,
    /// How often idle readers and the accept loop check the shutdown
    /// flag — the latency floor of [`NetServer::shutdown`], not of
    /// request handling (reads return as soon as data arrives).
    pub poll_interval: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 4,
            queue_capacity: 64,
            max_frame_bytes: 16 << 20,
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl NetConfig {
    /// The default configuration.
    pub fn new() -> Self {
        NetConfig::default()
    }

    /// Sets the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-worker queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the largest accepted envelope payload.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Sets the shutdown-flag poll interval.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }
}

/// Writes one length-delimited envelope: 4-byte big-endian length, then
/// the document bytes — the client-side sending half of the transport
/// (the server uses the same format internally).
///
/// # Errors
///
/// Fails on the underlying write, or if `doc` exceeds `u32::MAX` bytes.
pub fn write_envelope<W: Write>(w: &mut W, doc: &str) -> io::Result<()> {
    let len = u32::try_from(doc.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "document exceeds the u32 envelope length",
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(doc.as_bytes())?;
    w.flush()
}

/// Reads one length-delimited envelope, returning `None` on a clean EOF
/// at an envelope boundary — the client-side receiving half of the
/// transport. `max_len` bounds the accepted payload (the declared
/// length is checked before any allocation).
///
/// # Errors
///
/// Fails on the underlying read, on EOF mid-envelope, on a declared
/// length above `max_len`, or on non-UTF-8 payload bytes.
pub fn read_envelope<R: Read>(r: &mut R, max_len: usize) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside an envelope header",
                ))
            };
        }
        filled += n;
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("envelope length {len} exceeds the {max_len}-byte bound"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "envelope is not UTF-8"))
}

/// One accepted frame on its way to a worker.
struct Job {
    frame: String,
    /// Arrival position on its connection; the writer reorders by it.
    seq: u64,
    /// The connection's writer channel.
    reply: Sender<(u64, String)>,
}

/// Either stream transport, behind one read/write surface.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Either listening transport.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        Ok(match self {
            Listener::Tcp(l) => Conn::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
        })
    }
}

/// What one attempt to read a frame off a connection produced.
enum Incoming {
    /// A complete UTF-8 frame document.
    Frame(String),
    /// A declared length above the configured bound (reply + close).
    Oversized(usize),
    /// A complete envelope whose payload is not UTF-8 (reply + close).
    NotUtf8,
    /// The connection is done: clean EOF, idle shutdown, a truncated
    /// envelope, or an I/O error — close without another reply.
    Closed,
}

/// Outcome of filling a fixed buffer under the poll timeout.
enum Fill {
    Done,
    /// Clean EOF (or idle shutdown) before the first byte.
    Eof,
    /// Truncated mid-buffer, shutdown mid-envelope, or an I/O error.
    Abort,
}

/// Fills `buf` completely, retrying through read timeouts. `started`
/// says whether earlier bytes of the same envelope were already
/// consumed: a clean stop (EOF, or shutdown at an idle moment) is only
/// clean at an envelope boundary.
fn read_full(conn: &mut Conn, buf: &mut [u8], mut started: bool, shutdown: &AtomicBool) -> Fill {
    let mut filled = 0;
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !started {
                    Fill::Eof
                } else {
                    Fill::Abort
                }
            }
            Ok(n) => {
                filled += n;
                started = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The drain rule: data still flowing keeps the reader
                // alive past shutdown; the first *idle* timeout after
                // the flag ends it — at a boundary cleanly, mid-envelope
                // by aborting (the frame was never fully received, so it
                // was never accepted).
                if shutdown.load(Ordering::Relaxed) {
                    return if filled == 0 && !started {
                        Fill::Eof
                    } else {
                        Fill::Abort
                    };
                }
            }
            Err(_) => return Fill::Abort,
        }
    }
    Fill::Done
}

/// Reads one frame envelope off the connection.
fn read_incoming(conn: &mut Conn, max_frame_bytes: usize, shutdown: &AtomicBool) -> Incoming {
    let mut header = [0u8; 4];
    match read_full(conn, &mut header, false, shutdown) {
        Fill::Done => {}
        Fill::Eof | Fill::Abort => return Incoming::Closed,
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame_bytes {
        return Incoming::Oversized(len);
    }
    let mut buf = vec![0u8; len];
    match read_full(conn, &mut buf, true, shutdown) {
        Fill::Done => {}
        Fill::Eof | Fill::Abort => return Incoming::Closed,
    }
    match String::from_utf8(buf) {
        Ok(frame) => Incoming::Frame(frame),
        Err(_) => Incoming::NotUtf8,
    }
}

/// Routes one accepted frame into its owning worker's bounded queue, or
/// rejects it in place with a deterministic error document. The gauge is
/// raised before the send and lowered again on rejection, so it never
/// under-counts a queued frame.
fn route_frame(
    service: &ZigzagService,
    txs: &[SyncSender<Job>],
    depths: &[AtomicUsize],
    frame: String,
    seq: u64,
    reply: &Sender<(u64, String)>,
) {
    let worker = serve::owner_of(service, &frame, txs.len());
    depths[worker].fetch_add(1, Ordering::Relaxed);
    match txs[worker].try_send(Job {
        frame,
        seq,
        reply: reply.clone(),
    }) {
        Ok(()) => {}
        Err(err) => {
            depths[worker].fetch_sub(1, Ordering::Relaxed);
            let e = match err {
                TrySendError::Full(_) => Error::Overloaded { worker },
                TrySendError::Disconnected(_) => Error::Internal {
                    detail: format!("worker {worker} queue closed"),
                },
            };
            let _ = reply.send((seq, serve::encode_error(&e)));
        }
    }
}

/// The per-connection reader: frames off the socket, into the worker
/// queues, stamped with arrival sequence numbers.
fn reader_loop(
    mut conn: Conn,
    service: Arc<ZigzagService>,
    txs: Vec<SyncSender<Job>>,
    depths: Arc<Vec<AtomicUsize>>,
    max_frame_bytes: usize,
    shutdown: Arc<AtomicBool>,
    reply: Sender<(u64, String)>,
) {
    let mut seq = 0u64;
    loop {
        match read_incoming(&mut conn, max_frame_bytes, &shutdown) {
            Incoming::Frame(frame) => {
                route_frame(&service, &txs, &depths, frame, seq, &reply);
                seq += 1;
            }
            Incoming::Oversized(len) => {
                let e = Error::Wire {
                    line: 0,
                    detail: format!(
                        "frame envelope of {len} bytes exceeds the {max_frame_bytes}-byte bound"
                    ),
                };
                let _ = reply.send((seq, serve::encode_error(&e)));
                break;
            }
            Incoming::NotUtf8 => {
                let e = Error::Wire {
                    line: 0,
                    detail: "frame envelope is not valid UTF-8".into(),
                };
                let _ = reply.send((seq, serve::encode_error(&e)));
                break;
            }
            Incoming::Closed => break,
        }
    }
    // Dropping `reply` (the last reader-side sender) lets the writer
    // exit once every in-flight worker answer for this connection has
    // been delivered — the drain guarantee.
}

/// The per-connection writer: collects `(seq, document)` answers from
/// the workers (and the reader's direct rejections) and writes them in
/// sequence order, reordering through a buffer keyed by sequence.
fn writer_loop(mut conn: Conn, rx: Receiver<(u64, String)>) {
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut broken = false;
    while let Ok((seq, doc)) = rx.recv() {
        pending.insert(seq, doc);
        while let Some(doc) = pending.remove(&next) {
            if !broken && write_envelope(&mut conn, &doc).is_err() {
                // Client went away: keep draining the channel so the
                // workers' sends never observe the loss, but stop
                // writing.
                broken = true;
            }
            next += 1;
        }
    }
    // Every accepted frame got exactly one sequence number, so by the
    // time all senders dropped the buffer holds only a contiguous tail.
    for (_, doc) in pending {
        if !broken && write_envelope(&mut conn, &doc).is_err() {
            broken = true;
        }
    }
}

/// The accept loop: non-blocking accepts polled against the shutdown
/// flag, spawning one reader and one writer per connection.
#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: Listener,
    service: Arc<ZigzagService>,
    txs: Vec<SyncSender<Job>>,
    depths: Arc<Vec<AtomicUsize>>,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok(conn) => {
                // Accepted sockets may inherit the listener's
                // non-blocking mode on some platforms; readers use plain
                // timeouts instead.
                if conn.set_nonblocking(false).is_err()
                    || conn.set_read_timeout(Some(config.poll_interval)).is_err()
                {
                    continue;
                }
                let writer_conn = match conn.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let (reply_tx, reply_rx) = mpsc::channel();
                let writer = std::thread::spawn(move || writer_loop(writer_conn, reply_rx));
                let reader = {
                    let service = Arc::clone(&service);
                    let txs = txs.clone();
                    let depths = Arc::clone(&depths);
                    let shutdown = Arc::clone(&shutdown);
                    let max = config.max_frame_bytes;
                    std::thread::spawn(move || {
                        reader_loop(conn, service, txs, depths, max, shutdown, reply_tx)
                    })
                };
                let mut handles = conns.lock().unwrap_or_else(PoisonError::into_inner);
                handles.push(reader);
                handles.push(writer);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_interval)
            }
            Err(_) => std::thread::sleep(config.poll_interval),
        }
    }
}

/// A running socket server over a [`ZigzagService`]; see the
/// [module docs](self) for the protocol and serving guarantees.
///
/// Dropping the server performs the same graceful drain as
/// [`NetServer::shutdown`].
#[derive(Debug)]
pub struct NetServer {
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
    worker_txs: Vec<SyncSender<Job>>,
    tcp_addr: Option<SocketAddr>,
    #[cfg(unix)]
    unix_path: Option<PathBuf>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("seq", &self.seq).finish()
    }
}

impl NetServer {
    /// Binds a TCP listener (use port 0 for an ephemeral port, then
    /// [`NetServer::local_addr`]) and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or the threads cannot spawn.
    pub fn bind_tcp<A: ToSocketAddrs>(
        addr: A,
        service: Arc<ZigzagService>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut server = NetServer::start(Listener::Tcp(listener), service, config)?;
        server.tcp_addr = Some(local);
        Ok(server)
    }

    /// Binds a Unix-domain socket at `path` (which must not already
    /// exist; it is unlinked again on shutdown) and starts serving
    /// `service`.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be bound or the threads cannot spawn.
    #[cfg(unix)]
    pub fn bind_unix<P: AsRef<Path>>(
        path: P,
        service: Arc<ZigzagService>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let path = path.as_ref().to_path_buf();
        let listener = UnixListener::bind(&path)?;
        let mut server = NetServer::start(Listener::Unix(listener), service, config)?;
        server.unix_path = Some(path);
        Ok(server)
    }

    fn start(
        listener: Listener,
        service: Arc<ZigzagService>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        listener.set_nonblocking(true)?;
        let worker_count = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let depths: Arc<Vec<AtomicUsize>> =
            Arc::new((0..worker_count).map(|_| AtomicUsize::new(0)).collect());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut worker_txs = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for w in 0..worker_count {
            let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
            worker_txs.push(tx);
            let service = Arc::clone(&service);
            let depths = Arc::clone(&depths);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("zigzag-net-worker-{w}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            depths[w].fetch_sub(1, Ordering::Relaxed);
                            // Sessions are resolved per frame (no
                            // cross-frame memo): a session closed between
                            // two frames must answer the second with
                            // UnknownSession, not be served stale.
                            let mut memo = HashMap::new();
                            let doc = serve::respond_with_queues(
                                &service,
                                &job.frame,
                                &mut memo,
                                Some(&depths),
                            );
                            let _ = job.reply.send((job.seq, doc));
                        }
                    })?,
            );
        }
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let service = Arc::clone(&service);
            let txs = worker_txs.clone();
            let depths = Arc::clone(&depths);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("zigzag-net-accept".into())
                .spawn(move || {
                    accept_loop(listener, service, txs, depths, config, shutdown, conns)
                })?
        };
        Ok(NetServer {
            shutdown,
            accept: Some(accept),
            conns,
            workers,
            worker_txs,
            tcp_addr: None,
            #[cfg(unix)]
            unix_path: None,
        })
    }

    /// The bound TCP address (`None` for Unix-socket servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Gracefully drains and stops the server: no new connections are
    /// accepted, every frame already read off a socket is answered,
    /// worker queues are drained, all threads are joined, and (for Unix
    /// servers) the socket file is unlinked.
    ///
    /// Delivery blocks on the clients: a connection whose client stops
    /// reading holds its pending answers in the socket buffer, and the
    /// drain waits until they fit or the client goes away. Deployments
    /// needing a hard shutdown deadline should close client connections
    /// first.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Readers exit at their first idle frame boundary (answering
        // everything already in flight first); writers exit once every
        // answer for their connection has been delivered.
        let handles =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
        // With every reader gone, dropping the senders lets each worker
        // drain whatever is still queued and exit.
        self.worker_txs.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_round_trip_and_reject_hostile_lengths() {
        let mut buf = Vec::new();
        write_envelope(&mut buf, "hello\nworld\n").unwrap();
        assert_eq!(&buf[..4], &12u32.to_be_bytes());
        let mut r = io::Cursor::new(buf.clone());
        assert_eq!(
            read_envelope(&mut r, 1 << 10).unwrap().unwrap(),
            "hello\nworld\n"
        );
        // Clean EOF at a boundary is None, not an error.
        assert!(read_envelope(&mut r, 1 << 10).unwrap().is_none());

        // A declared length above the bound fails before allocation.
        let hostile = u32::MAX.to_be_bytes().to_vec();
        let err = read_envelope(&mut io::Cursor::new(hostile), 1 << 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncated header and truncated payload both fail loudly.
        let err = read_envelope(&mut io::Cursor::new(vec![0u8, 0]), 1 << 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let mut truncated = 8u32.to_be_bytes().to_vec();
        truncated.extend_from_slice(b"abc");
        assert!(read_envelope(&mut io::Cursor::new(truncated), 1 << 10).is_err());
        // Non-UTF-8 payloads are refused.
        let mut bad = 2u32.to_be_bytes().to_vec();
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(read_envelope(&mut io::Cursor::new(bad), 1 << 10).is_err());
    }

    #[test]
    fn full_queues_reject_with_a_deterministic_overload_document() {
        // The real enqueue path against a capacity-1 queue nobody
        // drains: first frame queues, second is rejected in place.
        let service = ZigzagService::sharded(4);
        let (tx, _rx) = mpsc::sync_channel::<Job>(1);
        let txs = vec![tx];
        let depths = vec![AtomicUsize::new(0)];
        let (reply_tx, reply_rx) = mpsc::channel();
        let frame = serve::encode_frame(
            crate::service::SessionId::from_raw(3),
            &crate::query::Query::CoordDecision,
        );
        route_frame(&service, &txs, &depths, frame.clone(), 0, &reply_tx);
        assert_eq!(depths[0].load(Ordering::Relaxed), 1);
        route_frame(&service, &txs, &depths, frame, 1, &reply_tx);
        assert_eq!(
            depths[0].load(Ordering::Relaxed),
            1,
            "rejected frame left in gauge"
        );
        let (seq, doc) = reply_rx.try_recv().unwrap();
        assert_eq!(seq, 1);
        assert!(serve::is_error_document(&doc));
        assert_eq!(doc, serve::encode_error(&Error::Overloaded { worker: 0 }));
    }
}
