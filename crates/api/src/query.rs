//! The closed query family of the facade.
//!
//! Theorem 4 reduces every knowledge question in the model to a small
//! family of decidable queries — exact thresholds (`max_x`), the
//! knowledge predicate (`knows`), certifying witnesses, refuting fast
//! runs, plus the global tight bounds of `GB(r)` and the Protocol 2
//! coordination decision. [`Query`] names that family as data: a typed,
//! serializable request any session can answer through one
//! [`crate::ZigzagService::dispatch`] code path, whether the session is a
//! batch run or a live stream. [`Response`] is the matching answer
//! family; both round-trip losslessly through [`crate::wire`].

use zigzag_bcm::{NodeId, Run, Time};
use zigzag_core::{GeneralNode, MaxXMatrix};

/// One request of the facade's closed query family.
///
/// All node and general-node parameters use the same vocabulary as the
/// underlying engines (`σ` observers, `θ` general nodes); a query
/// dispatched to a session answers exactly as the corresponding direct
/// engine call on that session's run or stream prefix would — pinned
/// byte-for-byte by the differential oracle.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Query {
    /// The exact knowledge threshold: the largest `x` with
    /// `K_σ(θ1 --x--> θ2)`, or `None` if no `x` is known.
    MaxX {
        /// The observer node `σ`.
        sigma: NodeId,
        /// The earlier node `θ1`.
        theta1: GeneralNode,
        /// The later node `θ2`.
        theta2: GeneralNode,
    },
    /// The knowledge predicate `K_σ(θ1 --x--> θ2)`.
    Knows {
        /// The observer node `σ`.
        sigma: NodeId,
        /// The earlier node `θ1`.
        theta1: GeneralNode,
        /// The later node `θ2`.
        theta2: GeneralNode,
        /// The required separation.
        x: i64,
    },
    /// The σ-visible zigzag witness certifying the threshold
    /// (Corollary 1), or `None` when no knowledge holds.
    Witness {
        /// The observer node `σ`.
        sigma: NodeId,
        /// The earlier node `θ1`.
        theta1: GeneralNode,
        /// The later node `θ2`.
        theta2: GeneralNode,
    },
    /// The dense all-pairs threshold matrix over the non-initial nodes of
    /// `past(r, σ)`.
    MaxXMatrix {
        /// The observer node `σ`.
        sigma: NodeId,
    },
    /// The tight bound on `time(to) − time(from)` supported by the global
    /// bounds graph `GB(r)`.
    TightBound {
        /// The source node.
        from: NodeId,
        /// The target node.
        to: NodeId,
    },
    /// The γ-fast run of `θ` at observer `σ` — the extremal
    /// indistinguishable run behind the engine's answers (Definition 24),
    /// which doubles as the refutation artifact for claims above the
    /// threshold.
    FastRun {
        /// The observer node `σ` whose past is preserved.
        sigma: NodeId,
        /// The anchor node `θ`.
        theta: GeneralNode,
        /// The γ parameter (how much earlier than tight the anchor runs).
        gamma: u64,
        /// Extra recording horizon beyond the run's own.
        extra_horizon: u64,
    },
    /// Protocol 2's coordination verdict for the session's configured
    /// spec: the earliest `B`-node at which the required knowledge holds,
    /// under the session's probe semantics.
    CoordDecision,
    /// The service's serving counters (latency histogram, observer-cache
    /// hit/miss/eviction totals, per-shard session counts, per-worker
    /// queue depths). Service-level: the frame's session line is used for
    /// worker routing only and need not name an open session, and the
    /// query cannot appear inside a [`Query::QueryBatch`] (a batch is
    /// answered by one session, which has no service-wide view).
    Stats,
    /// A batch of queries answered through one dispatch, positionally
    /// aligned with its responses. Single calls, batches and the bench
    /// harness share the same per-query code path.
    QueryBatch(
        /// The queries, answered in order.
        Vec<Query>,
    ),
    /// Serializes the addressed stream session's full state — run prefix,
    /// configuration, coordination progress, warm-observer manifest —
    /// into a portable [`crate::store::SessionSnapshot`]: the log-shipping
    /// half of live migration. Service-level like [`Query::Stats`]
    /// (cannot nest in a batch or hit a bare session), but the frame's
    /// session line addresses the session to export.
    Export,
    /// Installs a shipped [`crate::store::SessionSnapshot`] as a *new*
    /// stream session of the receiving service and answers its id: the
    /// receiving half of live migration. Service-level; the frame's
    /// session line is used for worker routing only.
    Import(
        /// The snapshot to install.
        Box<crate::store::SessionSnapshot>,
    ),
    /// Appends one event to the addressed stream session over the wire.
    /// Service-level like [`Query::Export`] (cannot nest in a batch or
    /// hit a bare session): the service routes the append through the
    /// durable store when a [`crate::SessionSupervisor`] manages the
    /// session, so wire appends and in-process appends share one
    /// durability path. Answered by [`Response::Appended`] carrying the
    /// session's event count *after* the append — the anchor for the
    /// client's exactly-once probe.
    Append(
        /// The event to append.
        Box<zigzag_bcm::RunEvent>,
    ),
    /// The addressed stream session's current event count. Service-level;
    /// this is the idempotent probe [`crate::ResilientClient`] uses to
    /// decide whether an append whose answer was lost actually landed.
    EventCount,
    /// Asks the service's attached [`crate::SessionSupervisor`] to sweep
    /// its store directory and recover every session log not already
    /// attached. Service-level; the frame's session line is used for
    /// worker routing only. Answers [`Response::Recovered`] with the
    /// (name, id) pairs recovered by *this* call.
    Recover,
}

/// The witness half of a positive [`Query::Witness`] answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessReport {
    /// The witness's weight — exactly the `max_x` threshold.
    pub weight: i64,
    /// The σ-visible zigzag, rendered for display/logging (single
    /// line). Callers who need to *revalidate* the structured artifact
    /// against a run (Corollary 1's independent certificate) should call
    /// `KnowledgeEngine::witness` on the engine layer, which returns the
    /// `zigzag_core::VisibleZigzag` itself; the facade keeps responses
    /// serializable.
    pub pattern: String,
}

/// The constructed run of a [`Query::FastRun`] answer.
#[derive(Debug, Clone, PartialEq)]
pub struct FastRunReport {
    /// The observer `σ` whose past is preserved (`run ~σ r`).
    pub sigma: NodeId,
    /// The γ parameter.
    pub gamma: u64,
    /// `time(θ)` in the constructed run.
    pub theta_time: Time,
    /// The constructed run itself — a complete, validatable [`Run`]
    /// (wire-encoded through the `zigzag-run v1` codec).
    pub run: Run,
}

/// The coordination half of a [`Query::CoordDecision`] answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordReport {
    /// The earliest `B`-node at which the spec's knowledge held, if any —
    /// where Protocol 2 performs `b`.
    pub first_known: Option<NodeId>,
    /// The trigger node `σ_C`, if the trigger has arrived.
    pub sigma_c: Option<NodeId>,
}

/// One answer of the facade's response family, positionally matching its
/// [`Query`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// Answer to [`Query::MaxX`]: the threshold, or `None` when
    /// unreachable.
    MaxX(Option<i64>),
    /// Answer to [`Query::Knows`].
    Knows(bool),
    /// Answer to [`Query::Witness`]: `None` when no knowledge holds.
    Witness(Option<WitnessReport>),
    /// Answer to [`Query::MaxXMatrix`].
    MaxXMatrix(MaxXMatrix),
    /// Answer to [`Query::TightBound`]: `None` when no path constrains
    /// the pair.
    TightBound(Option<i64>),
    /// Answer to [`Query::FastRun`].
    FastRun(FastRunReport),
    /// Answer to [`Query::CoordDecision`].
    CoordDecision(CoordReport),
    /// Answer to [`Query::Stats`].
    Stats(Box<crate::stats::StatsReport>),
    /// Answer to [`Query::QueryBatch`], positionally aligned.
    ResponseBatch(
        /// The answers, in query order.
        Vec<Response>,
    ),
    /// Answer to [`Query::Export`]: the serialized session.
    Exported(Box<crate::store::SessionSnapshot>),
    /// Answer to [`Query::Import`]: the id the receiving service
    /// assigned to the installed session.
    Imported(crate::service::SessionId),
    /// Answer to [`Query::Append`]: the session's event count after the
    /// append. With a single writer this is exact (previous count + 1);
    /// with concurrent writers it is the count observed at append time.
    Appended(u64),
    /// Answer to [`Query::EventCount`]: the session's current event
    /// count.
    EventCount(u64),
    /// Answer to [`Query::Recover`]: the sessions recovered by this call,
    /// as (store name, assigned session id) pairs, sorted by name.
    Recovered(Vec<(String, crate::service::SessionId)>),
}
