//! Session configuration: cache policy, probe semantics, coordination
//! spec.
//!
//! Three previously-internal scaling knobs become explicit API here:
//!
//! * the **LRU bound** on per-observer analysis states — a serving
//!   deployment querying millions of observers per stream must not hold
//!   one warm `ObserverState` per observer forever;
//! * **append-log compaction** — the graph layer keeps a catch-up log of
//!   appended edges while memoized longest-path results exist; a very
//!   long stream carries O(edges) log memory unless it is periodically
//!   settled and reclaimed;
//! * **probe semantics** — whether coordination decisions at a node see
//!   the node's own FFIP sends (see
//!   [`zigzag_coord::stream::ProbeSemantics`]).
//!
//! All three are policies, not semantics: any configuration answers every
//! query byte-identically to the unbounded default (pinned by the LRU and
//! compaction tests); the knobs trade memory against rebuild cost only.

use zigzag_coord::{ProbeSemantics, TimedCoordination};

/// Bounded-cache policy for a session; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CachePolicy {
    /// Maximum number of per-observer analysis states kept warm
    /// (`None` = unbounded, the default; `Some(0)` disables retention —
    /// states are built per query and dropped). Eviction is
    /// least-recently-used; an evicted observer's next query rebuilds a
    /// state that answers byte-identically.
    pub max_observers: Option<usize>,
    /// Compact the stream's graph append-log every this many appends
    /// (`None` = never, the default). Compaction settles the memoized
    /// longest-path results and reclaims the log; answers are unaffected.
    pub compact_every: Option<u64>,
}

impl CachePolicy {
    /// The unbounded default (everything kept warm, no compaction) — the
    /// pre-facade engine behavior.
    pub fn unbounded() -> Self {
        CachePolicy::default()
    }

    /// Bounds the observer-state cache (builder style).
    pub fn max_observers(mut self, cap: usize) -> Self {
        self.max_observers = Some(cap);
        self
    }

    /// Enables periodic append-log compaction (builder style).
    pub fn compact_every(mut self, appends: u64) -> Self {
        self.compact_every = Some(appends.max(1));
        self
    }
}

/// Per-session configuration carried by every [`crate::ZigzagService`]
/// session handle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionConfig {
    /// The cache policy (LRU bound + compaction cadence).
    pub cache: CachePolicy,
    /// Probe semantics for coordination decisions. The default,
    /// [`ProbeSemantics::IncludeOwnSends`], is the paper's `GE(r, σ)`
    /// (maximal sound evidence); `ExcludeOwnSends` reproduces the
    /// in-simulation probe exactly on every topology.
    pub probe: ProbeSemantics,
    /// The timed-coordination spec evaluated by
    /// [`crate::Query::CoordDecision`] (`None` = coordination queries are
    /// refused with [`crate::Error::NoSpec`]).
    pub spec: Option<TimedCoordination>,
}

impl SessionConfig {
    /// The default configuration: unbounded caches, include-own-sends
    /// probe, no coordination spec.
    pub fn new() -> Self {
        SessionConfig::default()
    }

    /// Sets the cache policy (builder style).
    pub fn cache(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the probe semantics (builder style).
    pub fn probe(mut self, probe: ProbeSemantics) -> Self {
        self.probe = probe;
        self
    }

    /// Attaches a coordination spec (builder style).
    pub fn spec(mut self, spec: TimedCoordination) -> Self {
        self.spec = Some(spec);
        self
    }
}
