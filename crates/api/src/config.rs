//! Session and serving configuration: cache policy, probe semantics,
//! coordination spec, and the socket front end's transport knobs.
//!
//! Three previously-internal scaling knobs become explicit API here:
//!
//! * the **LRU bound** on per-observer analysis states — a serving
//!   deployment querying millions of observers per stream must not hold
//!   one warm `ObserverState` per observer forever;
//! * **append-log compaction** — the graph layer keeps a catch-up log of
//!   appended edges while memoized longest-path results exist; a very
//!   long stream carries O(edges) log memory unless it is periodically
//!   settled and reclaimed;
//! * **probe semantics** — whether coordination decisions at a node see
//!   the node's own FFIP sends (see
//!   [`zigzag_coord::stream::ProbeSemantics`]).
//!
//! All three are policies, not semantics: any configuration answers every
//! query byte-identically to the unbounded default (pinned by the LRU and
//! compaction tests); the knobs trade memory against rebuild cost only.

use std::time::Duration;

use zigzag_coord::{ProbeSemantics, TimedCoordination};

/// Bounded-cache policy for a session; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CachePolicy {
    /// Maximum number of per-observer analysis states kept warm
    /// (`None` = unbounded, the default; `Some(0)` disables retention —
    /// states are built per query and dropped). Eviction is
    /// least-recently-used; an evicted observer's next query rebuilds a
    /// state that answers byte-identically.
    pub max_observers: Option<usize>,
    /// Compact the stream's graph append-log every this many appends
    /// (`None` = never, the default). Compaction settles the memoized
    /// longest-path results and reclaims the log; answers are unaffected.
    pub compact_every: Option<u64>,
}

impl CachePolicy {
    /// The unbounded default (everything kept warm, no compaction) — the
    /// pre-facade engine behavior.
    pub fn unbounded() -> Self {
        CachePolicy::default()
    }

    /// Bounds the observer-state cache (builder style).
    pub fn max_observers(mut self, cap: usize) -> Self {
        self.max_observers = Some(cap);
        self
    }

    /// Enables periodic append-log compaction (builder style).
    pub fn compact_every(mut self, appends: u64) -> Self {
        self.compact_every = Some(appends.max(1));
        self
    }
}

/// Per-session configuration carried by every [`crate::ZigzagService`]
/// session handle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionConfig {
    /// The cache policy (LRU bound + compaction cadence).
    pub cache: CachePolicy,
    /// Probe semantics for coordination decisions. The default,
    /// [`ProbeSemantics::IncludeOwnSends`], is the paper's `GE(r, σ)`
    /// (maximal sound evidence); `ExcludeOwnSends` reproduces the
    /// in-simulation probe exactly on every topology.
    pub probe: ProbeSemantics,
    /// The timed-coordination spec evaluated by
    /// [`crate::Query::CoordDecision`] (`None` = coordination queries are
    /// refused with [`crate::Error::NoSpec`]).
    pub spec: Option<TimedCoordination>,
}

impl SessionConfig {
    /// The default configuration: unbounded caches, include-own-sends
    /// probe, no coordination spec.
    pub fn new() -> Self {
        SessionConfig::default()
    }

    /// Sets the cache policy (builder style).
    pub fn cache(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the probe semantics (builder style).
    pub fn probe(mut self, probe: ProbeSemantics) -> Self {
        self.probe = probe;
        self
    }

    /// Attaches a coordination spec (builder style).
    pub fn spec(mut self, spec: TimedCoordination) -> Self {
        self.spec = Some(spec);
        self
    }
}

/// Tuning knobs for a [`crate::net::NetServer`].
///
/// The buffer and coalescing knobs shape the syscall-lean fast path:
/// each connection's reader slurps up to [`NetConfig::read_chunk_bytes`]
/// per `read` into a reusable scan buffer and routes every complete
/// envelope found in it, and each connection's writer coalesces all
/// replies that are ready in arrival order into batched writes of up to
/// [`NetConfig::write_coalesce_bytes`] with a single flush per wakeup.
/// Both are policies, not semantics: every configuration answers every
/// frame byte-identically (pinned by the loopback tests).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of dispatch workers (clamped to at least 1). Frames are
    /// routed to workers by session shard, exactly as in
    /// [`crate::serve::serve`].
    pub workers: usize,
    /// Bound on each worker's queue (clamped to at least 1). A frame
    /// arriving at a full queue is rejected with
    /// [`crate::Error::Overloaded`].
    pub queue_capacity: usize,
    /// Largest accepted envelope payload, in bytes. A declared length
    /// above this is answered with an error envelope and the connection
    /// is closed, before any allocation.
    pub max_frame_bytes: usize,
    /// How much spare room each reader keeps in its scan buffer — the
    /// most one `read` syscall can slurp (clamped to at least 16 bytes).
    /// Larger chunks amortize more pipelined frames per syscall at the
    /// cost of per-connection memory.
    pub read_chunk_bytes: usize,
    /// Soft bound on one coalesced write: a writer flushing a batch of
    /// replies issues a `write` whenever this many bytes have
    /// accumulated, then keeps batching (clamped to at least 16 bytes).
    pub write_coalesce_bytes: usize,
    /// Most frames one connection may have outstanding — accepted but
    /// not yet written back — before its reader stops reading the
    /// socket (clamped to at least 1). This is the transport's
    /// backpressure bound: a client that pipelines frames without ever
    /// reading its replies stalls (its writes eventually block on the
    /// kernel buffers) instead of growing the server's reply heap
    /// without limit. Pipelining clients should keep their in-flight
    /// window below this.
    pub max_inflight_frames: usize,
    /// How often idle readers and the accept loop check the shutdown
    /// flag — the latency floor of [`crate::net::NetServer::shutdown`],
    /// not of request handling (reads return as soon as data arrives).
    pub poll_interval: Duration,
    /// Bound on how long [`crate::net::NetServer::shutdown`] waits for a
    /// stalled connection to drain (`None` = wait forever, the pre-PR-10
    /// behavior). A client that stops reading its replies can otherwise
    /// hang the drain on a full kernel buffer; once a connection's writer
    /// has made no progress for this long during shutdown, outstanding
    /// slots are answered with deterministic [`crate::Error::Internal`]
    /// envelopes where possible and the connection is abandoned.
    pub drain_timeout: Option<Duration>,
    /// Deterministic chaos hook ([`crate::FaultPlan`]): when set, the
    /// server's per-connection reads and writes consult the plan (short
    /// reads/writes, injected resets, injected latency). `None` (the
    /// default) costs one never-taken branch per I/O call — the
    /// zero-allocation steady state is unaffected.
    pub faults: Option<std::sync::Arc<crate::fault::FaultPlan>>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 4,
            queue_capacity: 64,
            max_frame_bytes: 16 << 20,
            read_chunk_bytes: 64 << 10,
            write_coalesce_bytes: 256 << 10,
            max_inflight_frames: 1024,
            poll_interval: Duration::from_millis(25),
            drain_timeout: Some(Duration::from_secs(30)),
            faults: None,
        }
    }
}

impl NetConfig {
    /// The default configuration.
    pub fn new() -> Self {
        NetConfig::default()
    }

    /// Sets the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-worker queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the largest accepted envelope payload.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Sets the reader's per-syscall slurp size.
    pub fn read_chunk_bytes(mut self, bytes: usize) -> Self {
        self.read_chunk_bytes = bytes;
        self
    }

    /// Sets the writer's coalesced-write soft bound.
    pub fn write_coalesce_bytes(mut self, bytes: usize) -> Self {
        self.write_coalesce_bytes = bytes;
        self
    }

    /// Sets the per-connection in-flight frame bound.
    pub fn max_inflight_frames(mut self, frames: usize) -> Self {
        self.max_inflight_frames = frames;
        self
    }

    /// Sets the shutdown-flag poll interval.
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Sets the shutdown drain deadline (`None` = wait forever).
    pub fn drain_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Arms the server's network I/O with a deterministic fault plan.
    /// Chaos-testing hook; production servers never call this.
    pub fn faults(mut self, plan: std::sync::Arc<crate::fault::FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }
}
