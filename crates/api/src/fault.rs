//! Deterministic fault injection for the serving and durability layers.
//!
//! A [`FaultPlan`] is a seeded, schedule-driven chaos source threaded
//! behind the existing I/O seams: the counted socket halves in
//! [`crate::net`] and the log/snapshot write paths in [`crate::store`].
//! Every seam consults the plan through an `Option<Arc<FaultPlan>>`; when
//! the option is `None` (the default everywhere) the check is a single
//! branch on a niche-optimized pointer — no allocation, no lock, no rand
//! call — so the zero-allocation steady-state and throughput gates hold
//! with the hooks compiled in but disarmed.
//!
//! Determinism has two layers. Each injection *site* (network read,
//! network write, log write, fsync, snapshot write) owns its own
//! sub-generator, seeded from the plan seed and a fixed per-site tag, so
//! the fault sequence seen by one site does not depend on how the other
//! sites' calls interleave across threads. On top of that, an optional
//! *budget* caps the total number of injected faults; once spent, the plan
//! goes quiescent and the system must converge — this is what lets the
//! chaos oracle in `tests/chaos.rs` assert liveness (every request
//! eventually succeeds or surfaces a typed error) rather than racing an
//! adversary forever.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probability knobs for one [`FaultPlan`], in parts per 1000 per
/// injection opportunity.
///
/// All rates default to zero; a plan with all-zero rates injects nothing
/// regardless of seed, which is occasionally useful as a control arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultRates {
    /// Per-read chance (‰) of a short read: the read is truncated to one
    /// byte, exercising the scanner's partial-frame resumption.
    pub short_read: u32,
    /// Per-read chance (‰) of a connection reset surfaced as
    /// [`io::ErrorKind::ConnectionReset`].
    pub read_reset: u32,
    /// Per-write chance (‰) of a short write: only one byte is accepted,
    /// exercising `write_all` resumption and coalescing paths.
    pub short_write: u32,
    /// Per-write chance (‰) of a broken pipe surfaced as
    /// [`io::ErrorKind::ConnectionReset`].
    pub write_reset: u32,
    /// Per-I/O-call chance (‰) of injected latency (a short sleep) before
    /// the call proceeds, reordering timing without corrupting data.
    pub delay: u32,
    /// Per-log-append chance (‰) of a torn write: a strict prefix of the
    /// record reaches the file, then the append fails.
    pub torn_log_write: u32,
    /// Per-fsync chance (‰) of a failed `sync_all`.
    pub fsync_fail: u32,
    /// Per-snapshot-write chance (‰) of a disk-full failure before the
    /// temp file is renamed into place.
    pub snapshot_full: u32,
}

impl FaultRates {
    /// A moderately hostile all-fault profile used by the chaos tests:
    /// every fault class armed at a few percent per opportunity.
    pub fn hostile() -> Self {
        FaultRates {
            short_read: 60,
            read_reset: 25,
            short_write: 60,
            write_reset: 25,
            delay: 30,
            torn_log_write: 40,
            fsync_fail: 40,
            snapshot_full: 40,
        }
    }
}

/// One independent per-site fault stream: its own generator plus counters.
struct Site {
    rng: Mutex<StdRng>,
}

impl Site {
    fn new(seed: u64, tag: u64) -> Self {
        // Mix the site tag into the seed with SplitMix64's odd constant so
        // sites draw unrelated streams from one plan seed.
        Site {
            rng: Mutex::new(StdRng::seed_from_u64(
                seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )),
        }
    }

    /// Draws one per-mille roll from this site's stream.
    fn roll(&self) -> u32 {
        self.rng
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .gen_range(0u32..1000)
    }
}

/// A seeded, schedule-driven fault injector shared by the network and
/// store seams. See the [module docs](self) for the determinism model.
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// Remaining fault budget; `u64::MAX` means unlimited.
    budget: AtomicU64,
    injected: AtomicU64,
    net_read: Site,
    net_write: Site,
    log_write: Site,
    fsync: Site,
    snapshot: Site,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rates", &self.rates)
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Verdict for one network I/O opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Proceed normally.
    None,
    /// Truncate this read/write to a single byte.
    Short,
    /// Fail with a connection reset.
    Reset,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
}

/// Verdict for one log-append opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFault {
    /// Proceed normally.
    None,
    /// Write only the given number of bytes (a strict prefix), then fail.
    Torn(usize),
}

impl FaultPlan {
    /// Creates a plan with the given seed and rates and no fault budget
    /// (faults keep firing forever).
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        Self::with_budget(seed, rates, u64::MAX)
    }

    /// Creates a plan that quiesces after injecting `budget` faults in
    /// total (across all sites). The chaos oracle relies on this to bound
    /// adversarial behavior: after the budget is spent the system must
    /// converge.
    pub fn with_budget(seed: u64, rates: FaultRates, budget: u64) -> Self {
        FaultPlan {
            seed,
            rates,
            budget: AtomicU64::new(budget),
            injected: AtomicU64::new(0),
            net_read: Site::new(seed, 1),
            net_write: Site::new(seed, 2),
            log_write: Site::new(seed, 3),
            fsync: Site::new(seed, 4),
            snapshot: Site::new(seed, 5),
        }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total faults injected so far (all sites).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Tries to spend one unit of budget; returns `false` once exhausted.
    fn spend(&self) -> bool {
        let mut cur = self.budget.load(Ordering::Relaxed);
        loop {
            if cur == u64::MAX {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            if cur == 0 {
                return false;
            }
            match self.budget.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Consults the plan before a network read.
    pub fn on_net_read(&self) -> NetFault {
        self.net_io(&self.net_read, self.rates.short_read, self.rates.read_reset)
    }

    /// Consults the plan before a network write.
    pub fn on_net_write(&self) -> NetFault {
        self.net_io(
            &self.net_write,
            self.rates.short_write,
            self.rates.write_reset,
        )
    }

    fn net_io(&self, site: &Site, short: u32, reset: u32) -> NetFault {
        // One roll decides among {short, reset, delay, none}: the bands are
        // disjoint so per-site streams stay deterministic regardless of
        // which fault classes are armed.
        let roll = site.roll();
        let fault = if roll < short {
            NetFault::Short
        } else if roll < short + reset {
            NetFault::Reset
        } else if roll < short + reset + self.rates.delay {
            NetFault::Delay(Duration::from_micros(50 + 137 * u64::from(roll % 7)))
        } else {
            return NetFault::None;
        };
        if self.spend() {
            fault
        } else {
            NetFault::None
        }
    }

    /// Consults the plan before appending a `record_len`-byte record to a
    /// session log.
    pub fn on_log_write(&self, record_len: usize) -> LogFault {
        let roll = self.log_write.roll();
        if roll < self.rates.torn_log_write && record_len > 1 && self.spend() {
            // Tear at a roll-derived strict prefix, never the full record.
            LogFault::Torn(1 + (roll as usize) % (record_len - 1))
        } else {
            LogFault::None
        }
    }

    /// Returns `true` if this fsync should fail.
    pub fn on_fsync(&self) -> bool {
        self.fsync.roll() < self.rates.fsync_fail && self.spend()
    }

    /// Returns `true` if this snapshot temp-file write should fail with
    /// disk-full.
    pub fn on_snapshot_write(&self) -> bool {
        self.snapshot.roll() < self.rates.snapshot_full && self.spend()
    }

    /// The `io::Error` used for injected connection resets.
    pub fn reset_error() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn count_faults(plan: &FaultPlan, n: usize) -> usize {
        (0..n)
            .filter(|_| !matches!(plan.on_net_read(), NetFault::None))
            .count()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(42, FaultRates::hostile());
        let b = FaultPlan::new(42, FaultRates::hostile());
        let seq_a: Vec<NetFault> = (0..500).map(|_| a.on_net_read()).collect();
        let seq_b: Vec<NetFault> = (0..500).map(|_| b.on_net_read()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|f| !matches!(f, NetFault::None)));
    }

    #[test]
    fn sites_are_independent() {
        // Interleaving draws on one site must not perturb another site's
        // stream: that is the whole point of per-site sub-generators.
        let a = FaultPlan::new(7, FaultRates::hostile());
        let b = FaultPlan::new(7, FaultRates::hostile());
        let writes_a: Vec<NetFault> = (0..100).map(|_| a.on_net_write()).collect();
        for _ in 0..57 {
            let _ = b.on_net_read(); // extra reads interleaved
        }
        let writes_b: Vec<NetFault> = (0..100).map(|_| b.on_net_write()).collect();
        assert_eq!(writes_a, writes_b);
    }

    #[test]
    fn budget_quiesces_the_plan() {
        let plan = FaultPlan::with_budget(3, FaultRates::hostile(), 5);
        let fired = count_faults(&plan, 10_000);
        assert_eq!(fired, 5);
        assert_eq!(plan.injected(), 5);
        // Once spent, every later opportunity is a no-op.
        assert_eq!(count_faults(&plan, 1000), 0);
    }

    #[test]
    fn budget_is_thread_safe() {
        let plan = Arc::new(FaultPlan::with_budget(9, FaultRates::hostile(), 100));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&plan);
                thread::spawn(move || count_faults(&p, 5000))
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn torn_writes_are_strict_prefixes() {
        let plan = FaultPlan::new(11, FaultRates::hostile());
        let mut saw_torn = false;
        for _ in 0..500 {
            if let LogFault::Torn(n) = plan.on_log_write(64) {
                assert!((1..64).contains(&n), "tear point {n} out of range");
                saw_torn = true;
            }
        }
        assert!(saw_torn, "hostile rates never tore a write in 500 tries");
        // Records too short to tear are never torn.
        for _ in 0..500 {
            assert_eq!(plan.on_log_write(1), LogFault::None);
        }
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::new(1234, FaultRates::default());
        assert_eq!(count_faults(&plan, 2000), 0);
        assert!(!plan.on_fsync());
        assert!(!plan.on_snapshot_write());
        assert_eq!(plan.on_log_write(32), LogFault::None);
        assert_eq!(plan.injected(), 0);
    }
}
