//! # zigzag-api — the unified service facade
//!
//! The single public entry point over the zigzag-causality engines: a
//! [`ZigzagService`] owns typed [`Session`]s — **batch** sessions over
//! complete recorded runs and **stream** sessions over live event feeds —
//! and answers one serializable [`Query`] family through one
//! [`ZigzagService::dispatch`] code path. The paper's Theorem 4 reduces
//! every knowledge question to this closed family (thresholds, the
//! knowledge predicate, witnesses, fast-run refutations, tight bounds,
//! the Protocol 2 coordination decision), which is exactly the shape of a
//! typed request/response serving API.
//!
//! Sessions carry an explicit [`SessionConfig`]:
//!
//! * [`CachePolicy`] — an LRU bound on warm per-observer analysis states
//!   plus periodic mid-stream append-log compaction (memory knobs for
//!   serving deployments; answers are byte-identical under any policy);
//! * [`ProbeSemantics`] — whether coordination decisions at a node see
//!   the node's own FFIP sends;
//! * an optional [`TimedCoordination`] spec enabling
//!   [`Query::CoordDecision`].
//!
//! Every answer is byte-identical to the corresponding direct engine call
//! (`KnowledgeEngine`, `IncrementalEngine`, `coord`) on both session
//! shapes and at every stream prefix — pinned by the differential oracle.
//! [`wire`] gives queries and responses a stable line-oriented text
//! encoding (reusing the `zigzag-run v1` codec for embedded runs), and
//! [`serve`] runs the high-throughput form: the session table is sharded
//! ([`ZigzagService::sharded`]), and [`serve::serve`] fans wire-encoded
//! request frames across N worker threads, each owning its shards — no
//! cross-worker locking, per-session arrival order, responses
//! byte-identical to the serial loop at any worker count.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use zigzag_api::{Query, Response, SessionConfig, ZigzagService};
//! use zigzag_bcm::protocols::Ffip;
//! use zigzag_bcm::scheduler::EagerScheduler;
//! use zigzag_bcm::{Network, RunCursor, SimConfig, Simulator, Time};
//! use zigzag_core::GeneralNode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Figure 1: C → A [1,3], C → B [7,9].
//! let mut b = Network::builder();
//! let c = b.add_process("C");
//! let a = b.add_process("A");
//! let bb = b.add_process("B");
//! b.add_channel(c, a, 1, 3)?;
//! b.add_channel(c, bb, 7, 9)?;
//! let ctx = b.build()?;
//! let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
//! sim.external(Time::new(2), c, "go");
//! let run = sim.run(&mut Ffip::new(), &mut EagerScheduler)?;
//!
//! let service = ZigzagService::new();
//!
//! // Batch session over the recorded run...
//! let batch = service.open_batch(run.clone(), SessionConfig::new());
//! let sigma_c = run.external_receipt_node(c, "go").unwrap();
//! let theta_a = GeneralNode::chain(sigma_c, &[a])?;
//! let theta_b = GeneralNode::chain(sigma_c, &[bb])?;
//! let sigma = theta_b.resolve(&run)?;
//! let q = Query::MaxX { sigma, theta1: theta_a, theta2: theta_b };
//! assert_eq!(service.dispatch(batch, &q)?, Response::MaxX(Some(4)));
//!
//! // ...and a stream session fed the same schedule event-by-event
//! // answers identically at the full prefix.
//! let stream = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
//! let mut cursor = RunCursor::new(&run);
//! while let Some(ev) = cursor.next_event() {
//!     service.append(stream, &ev)?;
//! }
//! assert_eq!(service.dispatch(stream, &q)?, Response::MaxX(Some(4)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod config;
pub mod error;
pub mod fault;
pub mod net;
pub mod query;
pub mod serve;
pub mod service;
pub mod session;
pub mod stats;
pub mod store;
pub mod supervisor;
pub mod wire;

pub use client::{ClientConfig, ResilientClient};
pub use config::{CachePolicy, SessionConfig};
pub use error::Error;
pub use fault::{FaultPlan, FaultRates, LogFault, NetFault};
pub use net::{EnvelopeScanner, NetConfig, NetServer, ScanError};
pub use query::{CoordReport, FastRunReport, Query, Response, WitnessReport};
pub use service::{SessionId, ZigzagService};
pub use session::{AppendReport, BatchSession, Session, SessionBackend, StreamSession};
pub use stats::{LatencyHistogram, StatsReport, StoreCounters, TransportCounters, LATENCY_BUCKETS};
pub use store::{FsyncPolicy, Recovered, SessionSnapshot, SessionStore, StoreConfig};
pub use supervisor::SessionSupervisor;

// Re-exported so facade callers configure sessions without importing the
// coordination crate directly.
pub use zigzag_coord::{CoordKind, ProbeSemantics, TimedCoordination};
