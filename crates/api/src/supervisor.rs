//! Supervised recovery: a [`SessionSupervisor`] binds a
//! [`SessionStore`] to a [`ZigzagService`] so crash recovery is a serving
//! property, not a manual chore.
//!
//! PR 9's durability layer already recovers any single session on demand
//! (`SessionStore::recover`), but someone has to *call* it — after a
//! crash, a human (or ad-hoc glue code) must list the store directory and
//! reattach each log. The supervisor closes that gap:
//!
//! * **On startup** ([`SessionSupervisor::bind`]) every `<name>.log` in
//!   the store directory is recovered and reattached automatically, and
//!   orphaned `<name>.snap.tmp` files (a crash between snapshot write and
//!   rename) are swept.
//! * **On demand** a [`crate::Query::Recover`] frame — over a socket or
//!   in-process — triggers the same sweep and answers which sessions it
//!   attached, so a fleet controller can drive recovery remotely.
//! * **Durable wire appends**: while the supervisor is attached, a
//!   [`crate::Query::Append`] on a store-managed session routes through
//!   [`SessionStore::append`] (log + fsync + snapshot cadence) instead of
//!   the plain in-memory path, so socket clients get exactly the
//!   durability in-process callers get.
//!
//! Ownership is deliberately one-way: the supervisor holds `Arc`s to the
//! service and store; the service holds only a [`std::sync::Weak`] hook
//! back. Dropping the supervisor detaches the hook — no reference cycle,
//! and a service can outlive (or never have) its supervisor.

use std::sync::{Arc, Weak};

use zigzag_bcm::stream::RunEvent;

use crate::error::Error;
use crate::service::{SessionId, Supervise, ZigzagService};
use crate::session::AppendReport;
use crate::store::{Recovered, SessionStore};

/// What a recovery sweep reattached: `(name, recovery report)` pairs,
/// sorted by name.
pub type RecoverySweep = Vec<(String, Recovered)>;

/// Binds a [`SessionStore`] to a [`ZigzagService`]; see the
/// [module docs](self).
#[derive(Debug)]
pub struct SessionSupervisor {
    service: Arc<ZigzagService>,
    store: Arc<SessionStore>,
}

impl SessionSupervisor {
    /// Binds `store` to `service`, registers the durable-routing hook,
    /// and runs the startup recovery sweep: every unattached log in the
    /// store directory is recovered and reattached. Returns the
    /// supervisor and what the sweep recovered (sorted by name).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] if the sweep fails; sessions recovered
    /// before the failure stay attached, and the hook is *not*
    /// registered (the caller holds no supervisor to keep it alive).
    pub fn bind(
        service: Arc<ZigzagService>,
        store: Arc<SessionStore>,
    ) -> Result<(Arc<Self>, RecoverySweep), Error> {
        let recovered = store.recover_all(&service)?;
        let sup = Arc::new(SessionSupervisor { service, store });
        let hook: Weak<SessionSupervisor> = Arc::downgrade(&sup);
        sup.service.set_supervisor(hook);
        Ok((sup, recovered))
    }

    /// The supervised service.
    pub fn service(&self) -> &Arc<ZigzagService> {
        &self.service
    }

    /// The supervised store.
    pub fn store(&self) -> &Arc<SessionStore> {
        &self.store
    }

    /// Runs the recovery sweep now — the in-process form of
    /// [`crate::Query::Recover`].
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] if listing or any recovery fails.
    pub fn recover_now(&self) -> Result<RecoverySweep, Error> {
        self.store.recover_all(&self.service)
    }
}

impl Supervise for SessionSupervisor {
    fn durable_append(
        &self,
        service: &ZigzagService,
        id: SessionId,
        ev: &RunEvent,
    ) -> Option<Result<AppendReport, Error>> {
        if self.store.manages(id) {
            Some(self.store.append(service, id, ev))
        } else {
            None
        }
    }

    fn recover_all(&self, service: &ZigzagService) -> Result<Vec<(String, SessionId)>, Error> {
        Ok(self
            .store
            .recover_all(service)?
            .into_iter()
            .map(|(name, rec)| (name, rec.id))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::Arc;

    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::EagerScheduler;
    use zigzag_bcm::{RunCursor, SimConfig, Simulator, Time};

    use crate::config::SessionConfig;
    use crate::query::{Query, Response};
    use crate::store::StoreConfig;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "zigzag-supervisor-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fig_run() -> zigzag_bcm::Run {
        let mut b = zigzag_bcm::Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        let bb = b.add_process("B");
        b.add_channel(c, a, 1, 3).unwrap();
        b.add_channel(c, bb, 7, 9).unwrap();
        b.add_channel(bb, c, 2, 4).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(2), c, "go");
        sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap()
    }

    #[test]
    fn bind_recovers_every_log_and_registers_the_hook() {
        let dir = tmpdir("bind");
        let run = fig_run();
        let events: Vec<_> = RunCursor::new(&run).collect();

        // First life: two durable sessions, then "crash" (drop all).
        {
            let service = ZigzagService::new();
            let store = SessionStore::open(&dir, StoreConfig::default()).unwrap();
            for name in ["alpha", "beta"] {
                let id = store
                    .open_stream(
                        &service,
                        name,
                        run.context_arc(),
                        run.horizon(),
                        SessionConfig::new(),
                    )
                    .unwrap();
                for ev in &events {
                    store.append(&service, id, ev).unwrap();
                }
            }
        }

        // Second life: bind recovers both automatically.
        let service = Arc::new(ZigzagService::new());
        let store = Arc::new(SessionStore::open(&dir, StoreConfig::default()).unwrap());
        let (sup, recovered) = SessionSupervisor::bind(service.clone(), store.clone()).unwrap();
        let names: Vec<&str> = recovered.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        for (_, rec) in &recovered {
            assert_eq!(
                service.event_count(rec.id).unwrap(),
                events.len() as u64,
                "recovered session lost events"
            );
        }

        // The hook is live: a wire-level EventCount/Append route through
        // the durable store.
        let id = recovered[0].1.id;
        let Response::EventCount(n) = service.dispatch(id, &Query::EventCount).unwrap() else {
            panic!("wrong response variant");
        };
        assert_eq!(n, events.len() as u64);

        // Recover again: everything already attached, so the sweep is
        // empty — and the same holds through the Query::Recover path.
        assert!(sup.recover_now().unwrap().is_empty());
        let Response::Recovered(list) = service.dispatch(id, &Query::Recover).unwrap() else {
            panic!("wrong response variant");
        };
        assert!(list.is_empty());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_the_supervisor_detaches_the_hook() {
        let dir = tmpdir("drop");
        let service = Arc::new(ZigzagService::new());
        let store = Arc::new(SessionStore::open(&dir, StoreConfig::default()).unwrap());
        let (sup, _) = SessionSupervisor::bind(service.clone(), store.clone()).unwrap();

        let run = fig_run();
        let id = service.open_replay(&run, SessionConfig::new()).unwrap().0;
        // With the supervisor attached, Recover answers (even if empty).
        assert!(service.dispatch(id, &Query::Recover).is_ok());
        drop(sup);
        // Detached: Recover now surfaces the typed no-supervisor error.
        let err = service.dispatch(id, &Query::Recover).unwrap_err();
        assert!(matches!(err, Error::Store { .. }), "got {err}");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wire_appends_route_through_the_store() {
        let dir = tmpdir("route");
        let run = fig_run();
        let events: Vec<_> = RunCursor::new(&run).collect();

        let service = Arc::new(ZigzagService::new());
        let store = Arc::new(SessionStore::open(&dir, StoreConfig::default()).unwrap());
        let (_sup, _) = SessionSupervisor::bind(service.clone(), store.clone()).unwrap();
        let id = store
            .open_stream(
                &service,
                "gamma",
                run.context_arc(),
                run.horizon(),
                SessionConfig::new(),
            )
            .unwrap();

        for (k, ev) in events.iter().enumerate() {
            let Response::Appended(n) = service
                .dispatch(id, &Query::Append(Box::new(ev.clone())))
                .unwrap()
            else {
                panic!("wrong response variant");
            };
            assert_eq!(n, k as u64 + 1);
        }

        // The appends hit the log: a fresh service recovers all of them.
        drop(_sup);
        store.detach(id);
        let fresh = ZigzagService::new();
        let rec = store.recover(&fresh, "gamma").unwrap();
        assert_eq!(
            rec.restored_events + rec.replayed_events,
            events.len() as u64
        );
        assert!(!rec.truncated);

        let _ = fs::remove_dir_all(&dir);
    }
}
