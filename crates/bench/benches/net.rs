//! B10 — the socket front end: what the wire transport costs over the
//! in-process serving loop.
//!
//! Two measurements over the same workload (the B9 wire-loop shape: an
//! 8-shard service, 8 batch sessions, 128 two-query `QueryBatch`
//! frames), with byte-identity between the two serving paths asserted
//! before anything is timed:
//!
//! * `net/in-process/2` — [`zigzag_api::serve::serve`] at 2 workers:
//!   frames in memory, responses in memory — the floor the socket path
//!   is measured against.
//! * `net/unix-socket/2` — the same frames through a
//!   [`zigzag_api::net::NetServer`] over a Unix-domain socket at 2
//!   workers, pipelined the way the transport is built to be used: the
//!   client encodes all 128 envelopes into one buffer and writes it
//!   once, and reads the reply stream through a reusable
//!   [`EnvelopeScanner`]; the server slurps the batch in a handful of
//!   reads and answers through coalesced batched writes. The delta over
//!   `in-process` is the whole front-end overhead — envelope framing,
//!   two socket copies per frame, the reader/worker/writer hand-offs —
//!   and ns/iter ÷ 128 prices one round-tripped frame.
//!
//! The server is bound once outside the timing loop (binding and
//! joining threads is shutdown cost, not per-frame cost); each
//! iteration opens a fresh client connection, so accept + per-frame
//! costs are measured, steady-state. The queue capacity is raised to
//! 256 because a pipelined burst of 128 frames can land on a worker
//! faster than it drains — backpressure rejections would break the
//! byte-identity contract, not just the timing.
//!
//! Run with `CRITERION_JSON=BENCH_pr8.json cargo bench --bench net`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_api::net::{encode_envelope_into, EnvelopeScanner, NetConfig, NetServer};
use zigzag_api::{serve, Query, SessionConfig, ZigzagService};
use zigzag_bcm::{NodeId, ProcessId};
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::GeneralNode;

/// The B9 wire-loop workload, shared so the two paths answer the same
/// frames: an 8-shard service, 8 batch sessions over one recorded run,
/// 128 two-query `QueryBatch` frames round-robined across the sessions.
fn workload() -> (Arc<ZigzagService>, Vec<String>) {
    let ctx = scaled_context(6, 0.3, 11);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, 40, 5);
    let service = Arc::new(ZigzagService::sharded(8));
    let sessions: Vec<_> = (0..8)
        .map(|_| service.open_batch(run.clone(), SessionConfig::new()))
        .collect();
    let nodes: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let anchor = nodes[0];
    let mut frames = Vec::new();
    for k in 0..128usize {
        let sigma = nodes[k % nodes.len()];
        let id = sessions[k % sessions.len()];
        frames.push(serve::encode_frame(
            id,
            &Query::QueryBatch(vec![
                Query::MaxX {
                    sigma,
                    theta1: GeneralNode::basic(anchor),
                    theta2: GeneralNode::basic(sigma),
                },
                Query::TightBound {
                    from: anchor,
                    to: sigma,
                },
            ]),
        ));
    }
    assert_eq!(frames.len(), 128, "CI derives frames/sec from 128 frames");
    (service, frames)
}

/// One pipelined pass: all request envelopes written as a single
/// pre-encoded buffer, replies scanned back in order through a reusable
/// buffer — one connection, a handful of syscalls each way.
#[cfg(unix)]
fn socket_pass(path: &std::path::Path, request_bytes: &[u8], count: usize) -> Vec<String> {
    use std::io::Write;
    use std::os::unix::net::UnixStream;
    let mut conn = UnixStream::connect(path).expect("server is listening");
    conn.write_all(request_bytes)
        .expect("server accepts frames");
    conn.flush().expect("flush");
    let mut scanner = EnvelopeScanner::new(1 << 22);
    (0..count)
        .map(|_| {
            scanner
                .recv(&mut conn)
                .expect("server answers")
                .expect("one answer per frame")
                .to_string()
        })
        .collect()
}

fn net_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    let (service, frames) = workload();
    let workers = 2usize;
    let reference = serve::serve(&service, &frames, workers);
    assert!(reference.iter().all(|r| !serve::is_error_document(r)));

    group.bench_with_input(
        BenchmarkId::new("in-process", workers),
        &workers,
        |b, &w| {
            b.iter(|| serve::serve(&service, &frames, w));
        },
    );

    #[cfg(unix)]
    {
        let mut request_bytes = Vec::new();
        for frame in &frames {
            encode_envelope_into(&mut request_bytes, frame).expect("frames fit u32 envelopes");
        }
        let path =
            std::env::temp_dir().join(format!("zigzag-bench-net-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let server = NetServer::bind_unix(
            &path,
            Arc::clone(&service),
            NetConfig::new()
                .workers(workers)
                .queue_capacity(256)
                .poll_interval(Duration::from_millis(2)),
        )
        .expect("bind unix socket");
        // The tentpole contract before timing: the socket path returns
        // the in-process loop's bytes, frame for frame.
        assert_eq!(
            socket_pass(&path, &request_bytes, frames.len()),
            reference,
            "socket serving diverged from the in-process loop"
        );
        group.bench_with_input(
            BenchmarkId::new("unix-socket", workers),
            &workers,
            |b, _| {
                b.iter(|| socket_pass(&path, &request_bytes, frames.len()));
            },
        );
        // The amortization the fast path exists for, visible in the
        // server's own counters: far fewer syscalls than frames.
        let t = server.transport();
        assert!(t.frames_in >= 256, "{t:?}");
        assert!(t.read_syscalls < t.frames_in, "reads not amortized: {t:?}");
        assert!(
            t.writer_flushes < t.frames_out,
            "writes not coalesced: {t:?}"
        );
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, net_overhead);
criterion_main!(benches);
