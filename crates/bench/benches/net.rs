//! B10 — the socket front end: what the wire transport costs over the
//! in-process serving loop.
//!
//! Two measurements over the same workload (the B9 wire-loop shape: an
//! 8-shard service, 8 batch sessions, 128 two-query `QueryBatch`
//! frames), with byte-identity between the two serving paths asserted
//! before anything is timed:
//!
//! * `net/in-process/2` — [`zigzag_api::serve::serve`] at 2 workers:
//!   frames in memory, responses in memory — the floor the socket path
//!   is measured against.
//! * `net/unix-socket/2` — the same frames through a
//!   [`zigzag_api::net::NetServer`] over a Unix-domain socket at 2
//!   workers: length-delimited envelopes written by a client, read
//!   back in order. The delta over `in-process` is the whole front-end
//!   overhead — envelope framing, two socket copies per frame, the
//!   reader/worker/writer hand-offs — and ns/iter ÷ 128 prices one
//!   round-tripped frame.
//!
//! The server is bound once outside the timing loop (binding and
//! joining threads is shutdown cost, not per-frame cost); each
//! iteration opens a fresh client connection, so accept + per-frame
//! costs are measured, steady-state.
//!
//! Run with `CRITERION_JSON=BENCH_pr7.json cargo bench --bench net`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_api::net::{read_envelope, write_envelope, NetConfig, NetServer};
use zigzag_api::{serve, Query, SessionConfig, ZigzagService};
use zigzag_bcm::{NodeId, ProcessId};
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::GeneralNode;

/// The B9 wire-loop workload, shared so the two paths answer the same
/// frames: an 8-shard service, 8 batch sessions over one recorded run,
/// 128 two-query `QueryBatch` frames round-robined across the sessions.
fn workload() -> (Arc<ZigzagService>, Vec<String>) {
    let ctx = scaled_context(6, 0.3, 11);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, 40, 5);
    let service = Arc::new(ZigzagService::sharded(8));
    let sessions: Vec<_> = (0..8)
        .map(|_| service.open_batch(run.clone(), SessionConfig::new()))
        .collect();
    let nodes: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let anchor = nodes[0];
    let mut frames = Vec::new();
    for k in 0..128usize {
        let sigma = nodes[k % nodes.len()];
        let id = sessions[k % sessions.len()];
        frames.push(serve::encode_frame(
            id,
            &Query::QueryBatch(vec![
                Query::MaxX {
                    sigma,
                    theta1: GeneralNode::basic(anchor),
                    theta2: GeneralNode::basic(sigma),
                },
                Query::TightBound {
                    from: anchor,
                    to: sigma,
                },
            ]),
        ));
    }
    assert_eq!(frames.len(), 128, "CI derives frames/sec from 128 frames");
    (service, frames)
}

#[cfg(unix)]
fn socket_pass(path: &std::path::Path, frames: &[String]) -> Vec<String> {
    use std::os::unix::net::UnixStream;
    let mut conn = UnixStream::connect(path).expect("server is listening");
    for frame in frames {
        write_envelope(&mut conn, frame).expect("server accepts frames");
    }
    frames
        .iter()
        .map(|_| {
            read_envelope(&mut conn, 1 << 22)
                .expect("server answers")
                .expect("one answer per frame")
        })
        .collect()
}

fn net_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    let (service, frames) = workload();
    let workers = 2usize;
    let reference = serve::serve(&service, &frames, workers);
    assert!(reference.iter().all(|r| !serve::is_error_document(r)));

    group.bench_with_input(
        BenchmarkId::new("in-process", workers),
        &workers,
        |b, &w| {
            b.iter(|| serve::serve(&service, &frames, w));
        },
    );

    #[cfg(unix)]
    {
        let path =
            std::env::temp_dir().join(format!("zigzag-bench-net-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let server = NetServer::bind_unix(
            &path,
            Arc::clone(&service),
            NetConfig::new()
                .workers(workers)
                .poll_interval(Duration::from_millis(2)),
        )
        .expect("bind unix socket");
        // The tentpole contract before timing: the socket path returns
        // the in-process loop's bytes, frame for frame.
        assert_eq!(
            socket_pass(&path, &frames),
            reference,
            "socket serving diverged from the in-process loop"
        );
        group.bench_with_input(
            BenchmarkId::new("unix-socket", workers),
            &workers,
            |b, _| {
                b.iter(|| socket_pass(&path, &frames));
            },
        );
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, net_overhead);
criterion_main!(benches);
