//! B2/B3 — bounds-graph machinery: `GB(r)` and `GE(r, σ)` construction
//! and longest-path queries, scaling in run size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_bcm::ProcessId;
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::construct::FrontierGraph;
use zigzag_core::extended_graph::{ExtVertex, ExtendedGraph};

fn graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph-construction");
    for n in [4usize, 8, 16] {
        let ctx = scaled_context(n, 0.3, 7);
        let run = kicked_run(&ctx, ProcessId::new(0), 1, 60, 3);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .last()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("GB", n), &run, |b, run| {
            b.iter(|| BoundsGraph::of_run(run));
        });
        group.bench_with_input(BenchmarkId::new("GE", n), &run, |b, run| {
            b.iter(|| ExtendedGraph::new(run, sigma));
        });
        group.bench_with_input(BenchmarkId::new("frontier", n), &run, |b, run| {
            b.iter(|| FrontierGraph::of_run(run));
        });
    }
    group.finish();
}

fn longest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("longest-path");
    for n in [4usize, 8, 16] {
        let ctx = scaled_context(n, 0.3, 7);
        let run = kicked_run(&ctx, ProcessId::new(0), 1, 60, 3);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .last()
            .unwrap();
        let gb = BoundsGraph::of_run(&run);
        let ge = ExtendedGraph::new(&run, sigma);
        group.bench_with_input(BenchmarkId::new("GB-to-sigma", n), &gb, |b, gb| {
            b.iter(|| gb.longest_to(sigma).unwrap());
        });
        let anchor = run.past(sigma).iter().find(|k| !k.is_initial()).unwrap();
        group.bench_with_input(BenchmarkId::new("GE-from-anchor", n), &ge, |b, ge| {
            b.iter(|| ge.longest_from(ExtVertex::Node(anchor)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, graph_construction, longest_paths);
criterion_main!(benches);
