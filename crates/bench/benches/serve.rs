//! B9 — the serving tier: sharded wire dispatch and warm exclude-mode
//! coordination.
//!
//! Three claims, measured on the workloads a high-rate `zigzag::api`
//! deployment actually serves (every pair is asserted answer-equal
//! before anything is timed):
//!
//! * `serve/wire-loop/w` — the sharded wire loop of
//!   [`zigzag_api::serve::serve`]: a fixed batch of 128 frames (256
//!   queries as two-query `QueryBatch`es) over 8 batch sessions on an
//!   8-shard service, decoded, dispatched and re-encoded end to end at
//!   `w` workers. Single-CPU CI measures the fan-out at parity (the
//!   byte-identity across worker counts is the gated claim; wall-clock
//!   scaling needs a multi-core host), and ns/iter ÷ 256 is the
//!   per-query wire cost either way.
//! * `serve/coord-warm/h` vs `serve/coord-rebuild/h` — online
//!   `ExcludeOwnSends` coordination on a feedback topology (B has
//!   outgoing channels, including a B ⇄ D cycle) with recording horizon
//!   `h`: append every event of a recorded schedule and answer
//!   `CoordDecision` after each one. Warm = the serving path (a
//!   spec-configured stream session whose driver decides each new
//!   `B`-node on the incremental engine's **cached** own-sends-excluded
//!   state, one build per `(stream, σ)`). Rebuild = the batch helper per
//!   poll (`first_knowledge`: fresh `MessageIndex` plus one fresh
//!   own-sends-excluded `GE` per `B`-node, per append) — the only way to
//!   serve this online before the warm exclude-mode cache. The gap
//!   widens with the length of `B`'s timeline; CI gates ≥ 5×.
//! * `serve/append-delta/n` vs `serve/append-rebuild/n` — the PR 3/4
//!   streaming delta loop, re-recorded through the (now sharded) facade
//!   for regression tracking against `BENCH_pr3.json`/`BENCH_pr4.json`;
//!   the ≥ 5× CI gate still applies.
//!
//! Run with `CRITERION_JSON=BENCH_pr5.json cargo bench --bench serve`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_api::{
    serve, CoordKind, ProbeSemantics, Query, Response, SessionConfig, TimedCoordination,
    ZigzagService,
};
use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::stream::RunEvent;
use zigzag_bcm::{Network, NodeId, ProcessId, Run, RunCursor, StreamingRun, Time};
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_coord::{first_knowledge, OptimalStrategy, Scenario};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::GeneralNode;

/// The wire-loop workload: an 8-shard service, 8 batch sessions over one
/// recorded run, and 128 two-query `QueryBatch` frames round-robined
/// across the sessions.
fn wire_workload() -> (ZigzagService, Vec<String>) {
    let ctx = scaled_context(6, 0.3, 11);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, 40, 5);
    let service = ZigzagService::sharded(8);
    let sessions: Vec<_> = (0..8)
        .map(|_| service.open_batch(run.clone(), SessionConfig::new()))
        .collect();
    let nodes: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let anchor = nodes[0];
    let mut frames = Vec::new();
    for k in 0..128usize {
        let sigma = nodes[k % nodes.len()];
        let id = sessions[k % sessions.len()];
        frames.push(serve::encode_frame(
            id,
            &Query::QueryBatch(vec![
                Query::MaxX {
                    sigma,
                    theta1: GeneralNode::basic(anchor),
                    theta2: GeneralNode::basic(sigma),
                },
                Query::TightBound {
                    from: anchor,
                    to: sigma,
                },
            ]),
        ));
    }
    assert_eq!(frames.len(), 128, "CI derives queries/sec from 256 queries");
    (service, frames)
}

fn wire_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    let (service, frames) = wire_workload();
    // The tentpole contract, asserted before timing: any worker count
    // returns the serial loop's bytes.
    let reference = serve::serve(&service, &frames, 1);
    for workers in [2usize, 4, 8] {
        assert_eq!(
            serve::serve(&service, &frames, workers),
            reference,
            "sharded serving diverged at {workers} workers"
        );
    }
    assert!(reference.iter().all(|r| !serve::is_error_document(r)));
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("wire-loop", workers), &workers, |b, &w| {
            b.iter(|| serve::serve(&service, &frames, w));
        });
    }
    group.finish();
}

/// The feedback-topology coordination workload: a recorded Protocol 2
/// run (B ⇄ D cycle keeps B's timeline long) plus the spec the serving
/// loop polls. The run is recorded at the feasible `x = 4`; the standing
/// poll asks for a separation no prefix of the horizon can certify
/// (`x = 2·horizon`) — the worst-case regime a standing poll lives in
/// while the precedence is not yet known, where per-poll cost is real:
/// `first_knowledge` scans `B`'s whole timeline on every poll until the
/// knowledge appears, so a server that rebuilds per node pays
/// quadratically in the timeline length while the warm path builds each
/// `B`-node's state once.
fn coord_workload(horizon: u64) -> (TimedCoordination, Run, Vec<RunEvent>) {
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    let d = nb.add_process("D");
    nb.add_channel(c, a, 2, 5).unwrap();
    nb.add_channel(c, b, 9, 12).unwrap();
    nb.add_channel(c, d, 1, 2).unwrap();
    nb.add_channel(b, d, 1, 4).unwrap();
    nb.add_channel(d, b, 1, 3).unwrap();
    let ctx = nb.build().unwrap();
    let record_spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);
    let sc = Scenario::new(record_spec, ctx, Time::new(3), Time::new(horizon)).unwrap();
    let (run, _) = sc
        .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(7))
        .expect("legal scenario");
    let events = RunCursor::new(&run).collect_events();
    let poll_spec = TimedCoordination::new(
        CoordKind::Late {
            x: 2 * horizon as i64,
        },
        a,
        b,
        c,
    );
    (poll_spec, run, events)
}

/// Warm serving loop: append each event into a spec-configured
/// exclude-mode stream session and dispatch `CoordDecision` after every
/// append. Returns the verdict stream (for the equality assertion).
fn coord_warm(spec: &TimedCoordination, run: &Run, events: &[RunEvent]) -> Vec<Option<NodeId>> {
    let service = ZigzagService::new();
    let session = service.open_stream(
        run.context_arc(),
        run.horizon(),
        SessionConfig::new()
            .spec(spec.clone())
            .probe(ProbeSemantics::ExcludeOwnSends),
    );
    let mut verdicts = Vec::with_capacity(events.len());
    for ev in events {
        service.append(session, ev).expect("legal feed");
        let Response::CoordDecision(report) = service
            .dispatch(session, &Query::CoordDecision)
            .expect("spec configured")
        else {
            unreachable!("coordination queries return coordination reports");
        };
        verdicts.push(report.first_known);
    }
    verdicts
}

/// Per-node-rebuild baseline: grow the prefix and answer each poll with
/// the batch helper — a fresh `MessageIndex` and a fresh
/// own-sends-excluded `GE` per B-node, per append.
fn coord_rebuild(spec: &TimedCoordination, run: &Run, events: &[RunEvent]) -> Vec<Option<NodeId>> {
    let mut stream = StreamingRun::new(run.context_arc(), run.horizon());
    let mut verdicts = Vec::with_capacity(events.len());
    for ev in events {
        stream.append(ev).expect("legal feed");
        let (first, _) = first_knowledge(spec, stream.run(), ProbeSemantics::ExcludeOwnSends)
            .expect("legal prefix");
        verdicts.push(first);
    }
    verdicts
}

fn coord_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    for horizon in [60u64, 100] {
        let (spec, run, events) = coord_workload(horizon);
        let b_nodes = run
            .timeline(spec.b)
            .iter()
            .filter(|r| !r.id().is_initial())
            .count();
        assert!(b_nodes >= 4, "B timeline too short to exercise the cache");
        // The differential guarantee, checked before anything is timed.
        assert_eq!(
            coord_warm(&spec, &run, &events),
            coord_rebuild(&spec, &run, &events),
            "warm exclude-mode verdicts diverged from per-node rebuilds at h={horizon}"
        );
        group.bench_with_input(
            BenchmarkId::new("coord-warm", horizon),
            &events,
            |b, events| {
                b.iter(|| coord_warm(&spec, &run, events));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("coord-rebuild", horizon),
            &events,
            |b, events| {
                b.iter(|| coord_rebuild(&spec, &run, events));
            },
        );
    }
    group.finish();
}

/// One streaming delta-loop workload (the PR 3/4 shape): the recorded
/// feed, a standing observer a quarter of the way in, and the anchor
/// every query mentions.
struct Feed {
    run: Run,
    events: Vec<RunEvent>,
    sigma: NodeId,
    sigma_at: usize,
    anchor: NodeId,
}

fn feed(n: usize, horizon: u64) -> Feed {
    let ctx = scaled_context(n, 0.3, 11);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, horizon, 5);
    let events = RunCursor::new(&run).collect_events();
    let sigma_at = events.len() / 4;
    let mut stream = StreamingRun::new(run.context_arc(), run.horizon());
    let mut sigma = None;
    for ev in &events[..=sigma_at] {
        sigma = Some(stream.append(ev).expect("legal feed"));
    }
    Feed {
        anchor: NodeId::new(ProcessId::new(0), 1),
        run,
        events,
        sigma: sigma.expect("at least one event"),
        sigma_at,
    }
}

fn serve_delta(f: &Feed) -> Vec<(Option<i64>, Option<i64>)> {
    let service = ZigzagService::new();
    let session = service.open_stream(f.run.context_arc(), f.run.horizon(), SessionConfig::new());
    let theta_a = GeneralNode::basic(f.anchor);
    let theta_s = GeneralNode::basic(f.sigma);
    let mut answers = Vec::with_capacity(f.events.len());
    for (k, ev) in f.events.iter().enumerate() {
        let report = service.append(session, ev).expect("legal feed");
        if k < f.sigma_at {
            continue;
        }
        let batch = Query::QueryBatch(vec![
            Query::MaxX {
                sigma: f.sigma,
                theta1: theta_a.clone(),
                theta2: theta_s.clone(),
            },
            Query::TightBound {
                from: f.anchor,
                to: report.node,
            },
        ]);
        let Response::ResponseBatch(rs) = service.dispatch(session, &batch).expect("recognized")
        else {
            unreachable!("batch queries return batch responses");
        };
        let (Response::MaxX(m), Response::TightBound(b)) = (&rs[0], &rs[1]) else {
            unreachable!("positionally aligned responses");
        };
        answers.push((*m, *b));
    }
    answers
}

fn serve_rebuild(f: &Feed) -> Vec<(Option<i64>, Option<i64>)> {
    let mut stream = StreamingRun::new(f.run.context_arc(), f.run.horizon());
    let theta_a = GeneralNode::basic(f.anchor);
    let theta_s = GeneralNode::basic(f.sigma);
    let mut answers = Vec::with_capacity(f.events.len());
    for (k, ev) in f.events.iter().enumerate() {
        let node = stream.append(ev).expect("legal feed");
        if k < f.sigma_at {
            continue;
        }
        let engine = KnowledgeEngine::new(stream.run(), f.sigma).expect("observer exists");
        let m = engine.max_x(&theta_a, &theta_s).expect("recognized");
        let gb = BoundsGraph::of_run(stream.run());
        let b = gb
            .longest_path(f.anchor, node)
            .expect("anchor recorded")
            .map(|(w, _)| w);
        answers.push((m, b));
    }
    answers
}

fn delta_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    for (n, horizon) in [(6usize, 40u64), (12, 30)] {
        let f = feed(n, horizon);
        assert_eq!(
            serve_delta(&f),
            serve_rebuild(&f),
            "delta answers diverged from rebuild at n = {n}"
        );
        group.bench_with_input(BenchmarkId::new("append-delta", n), &f, |b, f| {
            b.iter(|| serve_delta(f));
        });
        group.bench_with_input(BenchmarkId::new("append-rebuild", n), &f, |b, f| {
            b.iter(|| serve_rebuild(f));
        });
    }
    group.finish();
}

criterion_group!(benches, wire_loop, coord_loops, delta_loops);
criterion_main!(benches);
