//! B7 — family-level execution: the scenario-family harness and the
//! engine-shared constructions it exercises.
//!
//! * `family/render-serial` vs `family/render-parallel` — one whole
//!   experiment family (E1 at the smoke profile) rendered through the
//!   harness with 1 worker vs the machine's worker count. Output is
//!   byte-identical by construction (asserted here); on multi-core hosts
//!   the parallel render is the family-level speedup, on single-core CI
//!   the two measure the fan-out's overhead (≈ none).
//! * `family/fastrun-cold/n` vs `family/fastrun-warm/n` — constructing a
//!   γ-fast run the seed way (fresh `GE(r, σ)` + SPFA per call, the old
//!   `refute`/`fast_run_of` behavior) vs through the engine's shared
//!   graph and memoized timings.
//! * `family/matrix-dense/n` — the dense all-pairs `max_x` matrix on a
//!   warm engine (the batch-consumer path that replaced the per-call
//!   `BTreeMap`).
//!
//! Run with `CRITERION_JSON=BENCH_pr2.json cargo bench --bench family`
//! to record per-iteration nanoseconds for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_bcm::par::thread_count;
use zigzag_bcm::ProcessId;
use zigzag_bench::experiments::{fig1_fork, Profile};
use zigzag_bench::harness::ExperimentHarness;
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::construct::fast_run;
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::GeneralNode;

fn family_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("family");
    let harness = || ExperimentHarness::new().experiment(fig1_fork::experiment(Profile::Smoke));
    // The differential guarantee, checked before anything is timed.
    assert_eq!(
        harness().render_with(1),
        harness().render_with(8),
        "family-parallel output diverged from serial"
    );
    group.bench_function(BenchmarkId::from_parameter("render-serial"), |b| {
        let h = harness();
        b.iter(|| h.render_with(1));
    });
    group.bench_function(BenchmarkId::from_parameter("render-parallel"), |b| {
        let h = harness();
        let workers = thread_count();
        b.iter(|| h.render_with(workers));
    });
    group.finish();
}

fn fast_run_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("family");
    for n in [6usize, 12] {
        let ctx = scaled_context(n, 0.3, 11);
        let run = kicked_run(&ctx, ProcessId::new(0), 1, 45, 5);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .last()
            .unwrap();
        let anchors: Vec<GeneralNode> = run
            .past(sigma)
            .iter()
            .filter(|k| !k.is_initial())
            .take(8)
            .map(GeneralNode::basic)
            .collect();

        // Seed behavior: every construction re-materializes GE(r, σ) and
        // re-runs the fast-timing SPFA pair.
        group.bench_with_input(BenchmarkId::new("fastrun-cold", n), &run, |b, run| {
            let mut k = 0usize;
            b.iter(|| {
                let theta = &anchors[k % anchors.len()];
                k += 1;
                fast_run(run, sigma, theta, 0, 10).unwrap()
            });
        });

        // Shared-analysis behavior: the engine's GE plus memoized
        // canonicalization and timings feed the same construction.
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        for theta in &anchors {
            let _ = engine.fast_run_of(theta, 0, 10).unwrap(); // warm caches
        }
        group.bench_with_input(BenchmarkId::new("fastrun-warm", n), &engine, |b, e| {
            let mut k = 0usize;
            b.iter(|| {
                let theta = &anchors[k % anchors.len()];
                k += 1;
                e.fast_run_of(theta, 0, 10).unwrap()
            });
        });

        // The dense all-pairs matrix on a warm engine.
        group.bench_with_input(BenchmarkId::new("matrix-dense", n), &engine, |b, e| {
            b.iter(|| e.max_x_basic_matrix().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, family_render, fast_run_sharing);
criterion_main!(benches);
