//! B11 — what resilience costs when nothing goes wrong: the
//! [`zigzag_api::ResilientClient`] against a raw framed client on the
//! same fault-free server.
//!
//! Two measurements over the same workload (one batch session over a
//! recorded run, 64 single-query request/reply round trips per
//! iteration, strictly one in flight — the resilient client's shape):
//!
//! * `chaos/raw-client/64` — a plain `UnixStream` driving
//!   [`write_envelope`]/[`read_envelope`] directly: the floor, no retry
//!   bookkeeping, no error classification, no deadline plumbing.
//! * `chaos/resilient-client/64` — the same 64 queries through
//!   [`ResilientClient::query`]: per-request deadlines armed, retry
//!   gating and typed-error classification on every reply, reconnect
//!   machinery ready — all of which must stay within **1.3×** of the raw
//!   client (gated in CI), because the fault hooks and the retry loop
//!   are designed to cost nothing until something actually fails.
//!
//! Byte-identity between the two clients' answers is asserted before
//! anything is timed. The server runs with fault injection **disarmed**
//! (`NetConfig::faults` unset), so this also prices the never-taken
//! chaos branch on the server's read/write seams.
//!
//! Run with `CRITERION_JSON=BENCH_pr10.json cargo bench --bench chaos`.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_api::net::{read_envelope, write_envelope, NetConfig, NetServer};
use zigzag_api::{serve, ClientConfig, Query, ResilientClient, SessionConfig, ZigzagService};
use zigzag_bcm::{NodeId, ProcessId};
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::GeneralNode;

const ROUND_TRIPS: usize = 64;

/// The workload: one batch session over a recorded run and 64 pointwise
/// `MaxX` queries walking the run's nodes — cheap enough that the
/// client-side overhead is what the numbers move on.
fn workload() -> (Arc<ZigzagService>, Vec<(zigzag_api::SessionId, Query)>) {
    let ctx = scaled_context(6, 0.3, 11);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, 40, 5);
    let service = Arc::new(ZigzagService::sharded(4));
    let id = service.open_batch(run.clone(), SessionConfig::new());
    let nodes: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let anchor = nodes[0];
    let queries = (0..ROUND_TRIPS)
        .map(|k| {
            let sigma = nodes[k % nodes.len()];
            (
                id,
                Query::MaxX {
                    sigma,
                    theta1: GeneralNode::basic(anchor),
                    theta2: GeneralNode::basic(sigma),
                },
            )
        })
        .collect();
    (service, queries)
}

/// One pass of the raw client: a single connection, one frame encoded
/// and written and one reply read and decoded per query — the same
/// strictly-sequential, fully-decoded shape the resilient client
/// presents, minus its deadline/retry/classification machinery.
fn raw_pass(
    conn: &mut UnixStream,
    queries: &[(zigzag_api::SessionId, Query)],
) -> Vec<zigzag_api::Response> {
    queries
        .iter()
        .map(|(id, q)| {
            let frame = serve::encode_frame(*id, q);
            write_envelope(conn, &frame).expect("server accepts frames");
            let doc = read_envelope(conn, 1 << 22)
                .expect("server answers")
                .expect("one answer per frame");
            assert!(!serve::is_error_document(&doc), "fault-free query failed");
            zigzag_api::wire::decode_response(&doc).expect("well-formed reply")
        })
        .collect()
}

fn resilience_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos");
    let (service, queries) = workload();

    let path = std::env::temp_dir().join(format!("zigzag-bench-chaos-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(2)
            .poll_interval(Duration::from_millis(2)),
    )
    .expect("bind unix socket");

    let mut raw = UnixStream::connect(&path).expect("server is listening");
    let mut resilient = ResilientClient::connect_unix(&path, ClientConfig::new());

    // The contract before timing: both clients return the same answers.
    let reference = raw_pass(&mut raw, &queries);
    for ((id, q), want) in queries.iter().zip(&reference) {
        let got = resilient.query(*id, q).expect("fault-free query succeeds");
        assert_eq!(&got, want, "resilient client diverged from the raw client");
    }

    group.bench_with_input(
        BenchmarkId::new("raw-client", ROUND_TRIPS),
        &ROUND_TRIPS,
        |b, _| {
            b.iter(|| raw_pass(&mut raw, &queries));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("resilient-client", ROUND_TRIPS),
        &ROUND_TRIPS,
        |b, _| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|(id, q)| resilient.query(*id, q).expect("fault-free query succeeds"))
                    .count()
            });
        },
    );

    raw.flush().expect("flush");
    drop(raw);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(benches, resilience_overhead);
criterion_main!(benches);
