//! B6 — end-to-end protocol decision latency: one full scenario run under
//! each strategy (the optimal strategy pays a knowledge query per B-node).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::Time;
use zigzag_bench::fig2_context;
use zigzag_coord::{
    AsyncChainStrategy, BStrategy, CoordKind, NeverStrategy, OptimalStrategy, Scenario,
    SimpleForkStrategy, TimedCoordination,
};

fn protocol_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    let (ctx, [a, b, ch_c, _d, e]) = fig2_context(true);
    let spec = TimedCoordination::new(CoordKind::Late { x: 5 }, a, b, ch_c);
    let scenario = Scenario::new(spec, ctx, Time::new(2), Time::new(120))
        .unwrap()
        .with_external(Time::new(25), e, "kick_e");
    type Factory = Box<dyn Fn() -> Box<dyn BStrategy>>;
    let strategies: Vec<(&str, Factory)> = vec![
        ("optimal", Box::new(|| Box::new(OptimalStrategy::new()))),
        ("fork", Box::new(|| Box::new(SimpleForkStrategy::default()))),
        ("async", Box::new(|| Box::new(AsyncChainStrategy::new()))),
        ("never", Box::new(|| Box::new(NeverStrategy))),
    ];
    for (name, make) in strategies {
        group.bench_with_input(
            BenchmarkId::new("fig2b-run", name),
            &scenario,
            |bench, sc| {
                bench.iter(|| {
                    let mut s = make();
                    sc.run_verified(s.as_mut(), &mut RandomScheduler::seeded(3))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, protocol_latency);
criterion_main!(benches);
