//! B4/B5 — the knowledge engine: max-x decision, witness extraction, and
//! the fast-run construction ablation (graph walk vs materialized run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_bcm::ProcessId;
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::GeneralNode;

fn knowledge_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge");
    for n in [4usize, 8, 16] {
        let ctx = scaled_context(n, 0.3, 11);
        let run = kicked_run(&ctx, ProcessId::new(0), 1, 60, 5);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .last()
            .unwrap();
        let past = run.past(sigma);
        let nodes: Vec<_> = past.iter().filter(|k| !k.is_initial()).collect();
        let (x, y) = (nodes[0], nodes[nodes.len() / 2]);
        let (tx, ty) = (GeneralNode::basic(x), GeneralNode::basic(y));

        group.bench_with_input(BenchmarkId::new("engine-build", n), &run, |b, run| {
            b.iter(|| KnowledgeEngine::new(run, sigma).unwrap());
        });
        // One engine across iterations: these measure the *warm* query
        // path (memoized SPFA + timing caches). Cold-vs-warm is isolated
        // in benches/engine.rs.
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        group.bench_with_input(BenchmarkId::new("max-x", n), &engine, |b, e| {
            b.iter(|| e.max_x(&tx, &ty).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("witness", n), &engine, |b, e| {
            b.iter(|| e.witness(&tx, &ty).unwrap());
        });
        // Ablation: the materialized Definition 24 run vs the graph walk.
        group.bench_with_input(BenchmarkId::new("fast-run", n), &engine, |b, e| {
            b.iter(|| e.fast_run_of(&tx, 0, 20).unwrap());
        });
        // Batch all-pairs thresholds (one SPFA per source).
        group.bench_with_input(BenchmarkId::new("max-x-matrix", n), &engine, |b, e| {
            b.iter(|| e.max_x_basic_matrix().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, knowledge_queries);
criterion_main!(benches);
