//! B6 — the shared-analysis query engine: cold (fresh engine per query,
//! the seed behavior) vs warm (one engine, memoized SPFA + timing caches)
//! `max_x` queries, plus batched thresholds, on `scaled_context`
//! topologies of n ∈ {6, 12, 24} processes.
//!
//! Run with `CRITERION_JSON=BENCH_pr1.json cargo bench --bench engine`
//! to record per-query nanoseconds for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_bcm::ProcessId;
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::analyzer::RunAnalyzer;
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::GeneralNode;

fn cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for n in [6usize, 12, 24] {
        let ctx = scaled_context(n, 0.3, 11);
        let run = kicked_run(&ctx, ProcessId::new(0), 1, 60, 5);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .last()
            .unwrap();
        let past = run.past(sigma);
        // Cap the anchor set: large pasts would make the all-pairs batch
        // quadratically huge, and 32² queries already exercise every cache.
        let mut nodes: Vec<_> = past.iter().filter(|k| !k.is_initial()).collect();
        nodes.truncate(32);
        let queries: Vec<(GeneralNode, GeneralNode)> = nodes
            .iter()
            .flat_map(|&a| nodes.iter().map(move |&b| (a.into(), b.into())))
            .collect();

        // Seed behavior: a fresh engine per query, every SPFA from scratch.
        group.bench_with_input(BenchmarkId::new("cold-max-x", n), &run, |b, run| {
            let mut k = 0usize;
            b.iter(|| {
                let (ta, tb) = &queries[k % queries.len()];
                k += 1;
                let engine = KnowledgeEngine::new(run, sigma).unwrap();
                engine.max_x(ta, tb).unwrap()
            });
        });

        // Shared-analysis behavior: one engine, memoized longest paths and
        // fast timings shared across queries.
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        for (ta, tb) in &queries {
            let _ = engine.max_x(ta, tb).unwrap(); // warm the caches
        }
        group.bench_with_input(BenchmarkId::new("warm-max-x", n), &engine, |b, e| {
            let mut k = 0usize;
            b.iter(|| {
                let (ta, tb) = &queries[k % queries.len()];
                k += 1;
                e.max_x(ta, tb).unwrap()
            });
        });

        // Batched thresholds through the run-level analyzer.
        group.bench_with_input(BenchmarkId::new("batch-max-x", n), &run, |b, run| {
            b.iter(|| {
                let analyzer = RunAnalyzer::new(run);
                let engine = analyzer.engine(sigma).unwrap();
                engine.max_x_batch(&queries).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, cold_vs_warm);
criterion_main!(benches);
