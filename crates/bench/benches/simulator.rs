//! B1 — simulator throughput: events per second as a function of network
//! size, density, and horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zigzag_bcm::ProcessId;
use zigzag_bench::{kicked_run, scaled_context};

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for n in [4usize, 8, 16] {
        let ctx = scaled_context(n, 0.3, 42);
        // Count nodes once for the throughput denominator.
        let nodes = kicked_run(&ctx, ProcessId::new(0), 1, 60, 0).node_count();
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::new("procs", n), &ctx, |b, ctx| {
            b.iter(|| kicked_run(ctx, ProcessId::new(0), 1, 60, 0));
        });
    }
    for horizon in [40u64, 80, 160] {
        let ctx = scaled_context(8, 0.3, 42);
        group.bench_with_input(BenchmarkId::new("horizon", horizon), &horizon, |b, &h| {
            b.iter(|| kicked_run(&ctx, ProcessId::new(0), 1, h, 0));
        });
    }
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
