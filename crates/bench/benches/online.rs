//! B8 — the online tier: per-append delta updates vs full rebuilds.
//!
//! The streaming serving loop is "append one event, answer the standing
//! queries": a fixed observer's knowledge threshold (the paper's `B`
//! tracking `K_σ(θ_a → σ)` as evidence arrives) plus a global `GB(r)`
//! tight bound to the newest node. Two implementations of that loop:
//!
//! * `online/append-delta/n` — the serving path as deployed: a
//!   [`ZigzagService`] stream session, events appended and every query
//!   dispatched through the facade's [`Query`] family (backed by the
//!   delta-updating `IncrementalEngine` — the facade adds one session
//!   lookup and one enum dispatch per query, which this bench keeps
//!   honest against the CI gate).
//! * `online/append-rebuild/n` — the seed pipeline's behavior: any change
//!   invalidates everything, so every event pays a fresh
//!   [`KnowledgeEngine`] (graph + SPFA) and a fresh [`BoundsGraph`] on
//!   the grown prefix.
//!
//! Both sides answer identically (asserted before timing). CI gates the
//! per-event ratio at ≥ 5× (`BENCH_pr3.json`); the measured margin is
//! orders of magnitude (see ROADMAP.md).
//!
//! * `online/fastrun-cold/n` vs `online/fastrun-warm/n` — the γ-fast-run
//!   construction, re-measured with the PR 3 delivery-queue arena: warm
//!   engine constructions now recycle the queue storage
//!   ([`zigzag_core::construct::RunArena`]); compare against
//!   `family/fastrun-warm/n` in `BENCH_pr2.json` for the arena's win.
//!
//! Run with `CRITERION_JSON=BENCH_pr3.json cargo bench --bench online`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_api::{Query, Response, SessionConfig, ZigzagService};
use zigzag_bcm::stream::RunEvent;
use zigzag_bcm::{NodeId, ProcessId, Run, RunCursor, StreamingRun};
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::construct::fast_run;
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::GeneralNode;

/// One streaming workload: the recorded feed, the standing observer
/// (chosen a quarter of the way in, so most appends serve warm queries),
/// and the anchor every query mentions (the kick node, causally before
/// everything).
struct Feed {
    run: Run,
    events: Vec<RunEvent>,
    sigma: NodeId,
    sigma_at: usize,
    anchor: NodeId,
}

fn feed(n: usize, horizon: u64) -> Feed {
    let ctx = scaled_context(n, 0.3, 11);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, horizon, 5);
    let events = RunCursor::new(&run).collect_events();
    let sigma_at = events.len() / 4;
    // Replay to the pick point to learn which node arises there.
    let mut stream = StreamingRun::new(run.context_arc(), run.horizon());
    let mut sigma = None;
    for ev in &events[..=sigma_at] {
        sigma = Some(stream.append(ev).expect("legal feed"));
    }
    Feed {
        anchor: NodeId::new(ProcessId::new(0), 1),
        run,
        events,
        sigma: sigma.expect("at least one event"),
        sigma_at,
    }
}

/// The streaming loop, facade form: a stream session fed event-by-event,
/// every standing query dispatched through `ZigzagService::dispatch` as a
/// `QueryBatch`. Returns the answer stream (for the equality assertion)
/// so the compiler cannot elide the queries.
fn serve_delta(f: &Feed) -> Vec<(Option<i64>, Option<i64>)> {
    let service = ZigzagService::new();
    let session = service.open_stream(f.run.context_arc(), f.run.horizon(), SessionConfig::new());
    let theta_a = GeneralNode::basic(f.anchor);
    let theta_s = GeneralNode::basic(f.sigma);
    let mut answers = Vec::with_capacity(f.events.len());
    for (k, ev) in f.events.iter().enumerate() {
        let report = service.append(session, ev).expect("legal feed");
        if k < f.sigma_at {
            continue;
        }
        let batch = Query::QueryBatch(vec![
            Query::MaxX {
                sigma: f.sigma,
                theta1: theta_a.clone(),
                theta2: theta_s.clone(),
            },
            Query::TightBound {
                from: f.anchor,
                to: report.node,
            },
        ]);
        let Response::ResponseBatch(rs) = service.dispatch(session, &batch).expect("recognized")
        else {
            unreachable!("batch queries return batch responses");
        };
        let (Response::MaxX(m), Response::TightBound(b)) = (&rs[0], &rs[1]) else {
            unreachable!("positionally aligned responses");
        };
        answers.push((*m, *b));
    }
    answers
}

/// The streaming loop, seed form: rebuild the engine and the bounds
/// graph from scratch on every append.
fn serve_rebuild(f: &Feed) -> Vec<(Option<i64>, Option<i64>)> {
    let mut stream = StreamingRun::new(f.run.context_arc(), f.run.horizon());
    let theta_a = GeneralNode::basic(f.anchor);
    let theta_s = GeneralNode::basic(f.sigma);
    let mut answers = Vec::with_capacity(f.events.len());
    for (k, ev) in f.events.iter().enumerate() {
        let node = stream.append(ev).expect("legal feed");
        if k < f.sigma_at {
            continue;
        }
        let engine = KnowledgeEngine::new(stream.run(), f.sigma).expect("observer exists");
        let m = engine.max_x(&theta_a, &theta_s).expect("recognized");
        let gb = BoundsGraph::of_run(stream.run());
        let b = gb
            .longest_path(f.anchor, node)
            .expect("anchor recorded")
            .map(|(w, _)| w);
        answers.push((m, b));
    }
    answers
}

fn append_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("online");
    for (n, horizon) in [(6usize, 40u64), (12, 30)] {
        let f = feed(n, horizon);
        // The differential guarantee, checked before anything is timed.
        assert_eq!(
            serve_delta(&f),
            serve_rebuild(&f),
            "delta answers diverged from rebuild at n = {n}"
        );
        group.bench_with_input(BenchmarkId::new("append-delta", n), &f, |b, f| {
            b.iter(|| serve_delta(f));
        });
        group.bench_with_input(BenchmarkId::new("append-rebuild", n), &f, |b, f| {
            b.iter(|| serve_rebuild(f));
        });
    }
    group.finish();
}

fn fast_run_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("online");
    for n in [6usize, 12] {
        let ctx = scaled_context(n, 0.3, 11);
        let run = kicked_run(&ctx, ProcessId::new(0), 1, 45, 5);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .last()
            .unwrap();
        let anchors: Vec<GeneralNode> = run
            .past(sigma)
            .iter()
            .filter(|k| !k.is_initial())
            .take(8)
            .map(GeneralNode::basic)
            .collect();
        group.bench_with_input(BenchmarkId::new("fastrun-cold", n), &run, |b, run| {
            let mut k = 0usize;
            b.iter(|| {
                let theta = &anchors[k % anchors.len()];
                k += 1;
                fast_run(run, sigma, theta, 0, 10).unwrap()
            });
        });
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        for theta in &anchors {
            let _ = engine.fast_run_of(theta, 0, 10).unwrap(); // warm caches + arena
        }
        group.bench_with_input(BenchmarkId::new("fastrun-warm", n), &engine, |b, e| {
            let mut k = 0usize;
            b.iter(|| {
                let theta = &anchors[k % anchors.len()];
                k += 1;
                e.fast_run_of(theta, 0, 10).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, append_loops, fast_run_arena);
criterion_main!(benches);
