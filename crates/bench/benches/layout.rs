//! B10 — the data-layout tier: the SPFA hot core measured in isolation.
//!
//! Three rows per vertex count n ∈ {24, 128, 256}, on a synthetic
//! bounds-shaped digraph (a potential function certifies it free of
//! positive cycles, like every graph derived from a real timed run):
//!
//! * `layout/cold-build/n` — intern n vertices, insert ~5n edges, freeze
//!   the CSR and run one cold SPFA (`longest_from`). This is the path a
//!   batch `BoundsGraph::of_run` pays once per run.
//! * `layout/warm-query/n` — the memoized hit: `longest_from_cached` on
//!   an already-analyzed graph (lock, map probe, `Arc` clone, one read).
//!   The counting-allocator test in `tests/oracle.rs` pins this loop to
//!   zero allocations; this row pins its latency.
//! * `layout/append-delta/n` — the streaming shape: resume from a warm
//!   snapshot (clone shares the analysis cache), append 16 edges one at
//!   a time, re-query the cached source after every append so each
//!   answer is served by `spfa_delta` over the append log.
//!
//! Every row is answer-checked against the dense Bellman–Ford baseline
//! (`longest_from_dense`) before anything is timed, so old- and
//! new-layout numbers recorded under the same names are directly
//! comparable — `BENCH_pr6.json` keeps the pre-rewrite medians under
//! `layout/*-old/n` names next to the fresh rows.
//!
//! Run with `CRITERION_JSON=BENCH_pr6.json cargo bench --bench layout`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_core::graph::WeightedDigraph;

/// Splitmix-style deterministic generator; no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A bounds-shaped edge list over vertices `0..n`: a successor chain plus
/// random chords. Every edge `u → v` carries weight
/// `t(v) − t(u) − slack` for the potential `t(v) = 4v` and `slack ≥ 0`,
/// so every cycle has non-positive weight — the same certificate a valid
/// timing function gives a real bounds graph (Lemma 17 shape). Backward
/// chords are strongly negative, forward chords can be positive; the mix
/// matches `BoundsGraph`'s ±(L, U) message pairs.
fn edge_list(n: u32, seed: u64) -> Vec<(u32, u32, i64, u32)> {
    let mut rng = Rng(seed);
    let t = |v: u32| i64::from(v) * 4;
    let mut edges = Vec::new();
    for v in 0..n.saturating_sub(1) {
        edges.push((v, v + 1, t(v + 1) - t(v) - (rng.below(3) as i64), 0));
    }
    for k in 0..4 * u64::from(n) {
        let u = rng.below(u64::from(n)) as u32;
        let mut v = rng.below(u64::from(n)) as u32;
        if v == u {
            v = (v + 1) % n;
        }
        let slack = rng.below(8) as i64;
        edges.push((u, v, t(v) - t(u) - slack, 1 + (k % 2) as u32));
    }
    edges
}

fn build(edges: &[(u32, u32, i64, u32)]) -> WeightedDigraph<u32> {
    let mut g = WeightedDigraph::new();
    for &(u, v, w, l) in edges {
        g.add_edge(u, v, w, l);
    }
    g
}

/// How many trailing edges the append-delta row replays one at a time.
const TAIL: usize = 16;

fn layout_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    for n in [24u32, 128, 256] {
        let edges = edge_list(n, 0xC0FF_EE00 + u64::from(n));
        let src = 0u32;

        // Answer-check once before timing: engine SPFA vs dense
        // Bellman–Ford on the full graph.
        let full = build(&edges);
        let lp = full.longest_from(&src).expect("no positive cycle");
        let dense = full.longest_from_dense(&src).expect("no positive cycle");
        for (i, &expected) in dense.iter().enumerate() {
            assert_eq!(lp.weight(i), expected, "SPFA diverged from dense at {i}");
        }

        group.bench_with_input(BenchmarkId::new("cold-build", n), &edges, |b, edges| {
            b.iter(|| {
                let g = build(edges);
                g.longest_from(&src)
                    .expect("no positive cycle")
                    .max_weight()
            });
        });

        let warm = build(&edges);
        warm.longest_from_cached(&src).expect("no positive cycle");
        group.bench_with_input(BenchmarkId::new("warm-query", n), &warm, |b, warm| {
            b.iter(|| {
                warm.longest_from_cached(&src)
                    .expect("no positive cycle")
                    .max_weight()
            });
        });

        // The delta loop resumes from a warm snapshot missing the last
        // TAIL edges and replays them one at a time, querying after each
        // append — the `IncrementalEngine::append_event` shape.
        let split = edges.len() - TAIL;
        let base = build(&edges[..split]);
        base.longest_from_cached(&src).expect("no positive cycle");
        let tail = &edges[split..];

        // Answer-check the delta path against the fresh full graph.
        let delta_lp = {
            let mut g = base.clone();
            let mut last = None;
            for &(u, v, w, l) in tail {
                g.add_edge(u, v, w, l);
                last = Some(g.longest_from_cached(&src).expect("no positive cycle"));
            }
            last.expect("non-empty tail")
        };
        for (i, &expected) in dense.iter().enumerate() {
            assert_eq!(
                delta_lp.weight(i),
                expected,
                "delta-relaxed answers diverged from dense at {i}"
            );
        }

        group.bench_with_input(
            BenchmarkId::new("append-delta", n),
            &(base, tail),
            |b, (base, tail)| {
                b.iter(|| {
                    let mut g = base.clone();
                    let mut acc = 0i64;
                    for &(u, v, w, l) in *tail {
                        g.add_edge(u, v, w, l);
                        let lp = g.longest_from_cached(&src).expect("no positive cycle");
                        acc ^= lp.max_weight().unwrap_or(0);
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, layout_rows);
criterion_main!(benches);
