//! B11 — durable sessions: what the event log costs over a pure
//! in-memory stream, what a snapshot costs to write, and what snapshots
//! buy at recovery time.
//!
//! One workload shared by every row: a 6-process random network
//! (`scaled_context(6, 0.3, 11)`), one recorded run to horizon 400
//! (~2300 events), fed event-by-event into a stream session. Before
//! anything is timed, a logged session is killed, recovered, and every
//! probe answer is asserted byte-identical to the never-killed
//! in-memory session — the durability contract gates the timing.
//!
//! * `store/append-memory/64` — 64 warm appends into a plain
//!   [`ZigzagService`] stream session. The floor. Session opens are
//!   amortized out: one session absorbs the whole feed, 64 events per
//!   iteration, and is re-opened only when the feed is exhausted.
//! * `store/append-logged/64` — the same warm appends through
//!   [`SessionStore`] with `FsyncPolicy::Never`: the floor plus one
//!   encoded line and one buffered write per event. CI gates the
//!   logged/memory ratio (the log's write amplification), not absolute
//!   time.
//! * `store/snapshot-write/N` — one [`SessionStore::snapshot`] of the
//!   fully-fed N-event session: freeze, replay-verify, atomic
//!   tmp-write + rename install.
//! * `store/recover-replay/N` — [`SessionStore::recover`] from the log
//!   alone (no snapshot on disk): full decode + replay of all N events.
//! * `store/recover-snapshot/N` — recover with a snapshot covering the
//!   whole run: surface-scan the log, restore the prefix in bulk,
//!   replay a zero-event tail. Both paths share the decode-and-validate
//!   floor, so the snapshot wins modestly (~1.2× here), never 10×; CI
//!   gates that restore does not *lose* to replay.
//!
//! `ns/iter ÷ 64` prices one event for the `append-*` rows
//! (`STORE_EVENTS_PER_ITER` in `bench_report` renders the derived
//! column). Run with `CRITERION_JSON=BENCH_pr9.json cargo bench --bench
//! store`.

use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zigzag_api::{
    Query, Response, SessionConfig, SessionId, SessionStore, StoreConfig, ZigzagService,
};
use zigzag_bcm::{NodeId, ProcessId, Run, RunCursor, RunEvent};
use zigzag_bench::{kicked_run, scaled_context};
use zigzag_core::GeneralNode;

/// Every `store/append-*` row appends exactly this many events per
/// iteration; `bench_report` divides by it to price one append.
const STORE_EVENTS_PER_ITER: usize = 64;

/// A fresh scratch directory per call, cleaned of any previous debris.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("zigzag-bench-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The shared feed: one recorded run and its event sequence.
fn feed() -> (Run, Vec<RunEvent>) {
    let ctx = scaled_context(6, 0.3, 11);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, 400, 5);
    let mut events = Vec::new();
    let mut cursor = RunCursor::new(&run);
    while let Some(ev) = cursor.next_event() {
        events.push(ev);
    }
    assert!(
        events.len() >= 4 * STORE_EVENTS_PER_ITER,
        "feed too short: {} events",
        events.len()
    );
    (run, events)
}

/// The probe battery answered on a fully-fed session — asserts the
/// durability contract before anything is timed.
fn probe_answers(service: &ZigzagService, id: SessionId, run: &Run) -> Vec<Response> {
    let nodes: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let (&first, &last) = (nodes.first().unwrap(), nodes.last().unwrap());
    [
        Query::MaxXMatrix { sigma: last },
        Query::MaxX {
            sigma: last,
            theta1: GeneralNode::basic(first),
            theta2: GeneralNode::basic(last),
        },
        Query::TightBound {
            from: first,
            to: last,
        },
    ]
    .iter()
    .map(|q| service.dispatch(id, q).expect("probe answers"))
    .collect()
}

/// Feed a full durable session named `s` into `dir`, optionally capping
/// with a snapshot, then drop everything (the "crash").
fn persist(dir: &std::path::Path, run: &Run, events: &[RunEvent], with_snapshot: bool) {
    let store = SessionStore::open(dir, StoreConfig::new()).unwrap();
    let service = ZigzagService::new();
    let id = store
        .open_stream(
            &service,
            "s",
            run.context_arc(),
            run.horizon(),
            SessionConfig::new(),
        )
        .unwrap();
    for ev in events {
        store.append(&service, id, ev).unwrap();
    }
    if with_snapshot {
        assert!(store.snapshot(&service, id).unwrap(), "snapshot skipped");
    }
}

fn store_costs(c: &mut Criterion) {
    let (run, events) = feed();
    let n = STORE_EVENTS_PER_ITER;
    let total = events.len();

    // The contract gate: kill a logged session mid-cadence, recover it,
    // and the recovered answers must be byte-identical to the
    // uninterrupted in-memory session before any row is timed.
    let reference = {
        let service = ZigzagService::new();
        let id = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
        for ev in &events {
            service.append(id, ev).expect("in-memory append");
        }
        probe_answers(&service, id, &run)
    };
    {
        let dir = scratch("gate");
        let store = SessionStore::open(&dir, StoreConfig::new().snapshot_every(256)).unwrap();
        let service = ZigzagService::new();
        let id = store
            .open_stream(
                &service,
                "gate",
                run.context_arc(),
                run.horizon(),
                SessionConfig::new(),
            )
            .unwrap();
        for ev in &events {
            store.append(&service, id, ev).expect("logged append");
        }
        drop((service, store)); // the crash
        let store = SessionStore::open(&dir, StoreConfig::new()).unwrap();
        let service = ZigzagService::new();
        let rec = store.recover(&service, "gate").expect("recover");
        assert!(!rec.truncated, "clean log reported torn");
        assert_eq!(
            probe_answers(&service, rec.id, &run),
            reference,
            "recovered session diverged from the uninterrupted one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut group = c.benchmark_group("store");

    // Both append rows price 64 *warm* appends: one session absorbs the
    // feed 64 events at a time and is re-opened only on exhaustion
    // (~every 35 iterations), so the open cost amortizes away and the
    // logged/memory ratio isolates exactly the per-event log write.
    group.bench_with_input(BenchmarkId::new("append-memory", n), &n, |b, &n| {
        let mut state: Option<(ZigzagService, SessionId, usize)> = None;
        b.iter(|| {
            if state.as_ref().is_none_or(|(_, _, pos)| pos + n > total) {
                let service = ZigzagService::new();
                let id =
                    service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
                state = Some((service, id, 0));
            }
            let (service, id, pos) = state.as_mut().unwrap();
            for ev in &events[*pos..*pos + n] {
                service.append(*id, ev).unwrap();
            }
            *pos += n;
        });
    });

    let append_dir = scratch("append");
    {
        let store = SessionStore::open(&append_dir, StoreConfig::new()).unwrap();
        // Logs refuse to clobber, so each re-open gets a fresh name.
        let next = AtomicUsize::new(0);
        group.bench_with_input(BenchmarkId::new("append-logged", n), &n, |b, &n| {
            let mut state: Option<(ZigzagService, SessionId, usize)> = None;
            b.iter(|| {
                if state.as_ref().is_none_or(|(_, _, pos)| pos + n > total) {
                    if let Some((_, id, _)) = state.take() {
                        store.detach(id);
                    }
                    let service = ZigzagService::new();
                    let name = format!("s{}", next.fetch_add(1, Ordering::Relaxed));
                    let id = store
                        .open_stream(
                            &service,
                            &name,
                            run.context_arc(),
                            run.horizon(),
                            SessionConfig::new(),
                        )
                        .unwrap();
                    state = Some((service, id, 0));
                }
                let (service, id, pos) = state.as_mut().unwrap();
                for ev in &events[*pos..*pos + n] {
                    store.append(service, *id, ev).unwrap();
                }
                *pos += n;
            });
        });
    }
    let _ = std::fs::remove_dir_all(&append_dir);

    // Snapshot cost over a fully-fed session; each iteration re-installs
    // the snapshot through the same tmp-write + rename path.
    let snap_write_dir = scratch("snapwrite");
    {
        let store = SessionStore::open(&snap_write_dir, StoreConfig::new()).unwrap();
        let service = ZigzagService::new();
        let id = store
            .open_stream(
                &service,
                "s",
                run.context_arc(),
                run.horizon(),
                SessionConfig::new(),
            )
            .unwrap();
        for ev in &events {
            store.append(&service, id, ev).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("snapshot-write", total), &total, |b, _| {
            b.iter(|| {
                assert!(store.snapshot(&service, id).unwrap(), "snapshot skipped");
            });
        });
    }
    let _ = std::fs::remove_dir_all(&snap_write_dir);

    // Two persisted states, prepared once: a log-only directory and a
    // snapshot-covered one. Recovery reads, replays, and installs into
    // a fresh service each iteration.
    let replay_dir = scratch("recover-replay");
    let snap_dir = scratch("recover-snap");
    persist(&replay_dir, &run, &events, false);
    persist(&snap_dir, &run, &events, true);

    group.bench_with_input(BenchmarkId::new("recover-replay", total), &total, |b, _| {
        b.iter(|| {
            let store = SessionStore::open(&replay_dir, StoreConfig::new()).unwrap();
            let service = ZigzagService::new();
            let rec = store.recover(&service, "s").unwrap();
            assert_eq!(rec.replayed_events as usize, total);
        });
    });

    group.bench_with_input(
        BenchmarkId::new("recover-snapshot", total),
        &total,
        |b, _| {
            b.iter(|| {
                let store = SessionStore::open(&snap_dir, StoreConfig::new()).unwrap();
                let service = ZigzagService::new();
                let rec = store.recover(&service, "s").unwrap();
                assert!(rec.from_snapshot && rec.replayed_events == 0, "{rec:?}");
            });
        },
    );

    group.finish();
    let _ = std::fs::remove_dir_all(&replay_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

criterion_group!(benches, store_costs);
criterion_main!(benches);
