//! The scenario-family experiment harness.
//!
//! Every `exp_*` binary is a family of **independent cells** — one table
//! row (or row block) per parameter point, each simulating its own runs
//! and asserting its own paper claims. Historically the binaries looped
//! over those cells serially, so only the *inner* `x × seeds` grids (via
//! [`zigzag_bcm::par::par_map`] in the coordination layer) saw threads.
//! This harness lifts the outer loops into data:
//!
//! * a [`Section`] is a preamble (title + table header), a list of cell
//!   closures, and an optional footer that folds the cells' metrics;
//! * an [`Experiment`] is a named list of sections;
//! * an [`ExperimentHarness`] renders any number of experiments by
//!   flattening **all** their cells into one slice and fanning it through
//!   [`zigzag_bcm::par::par_map_with`] — whole families execute across
//!   threads, not just one sweep's inner grid.
//!
//! Reassembly is purely positional and footers run serially afterwards,
//! so [`ExperimentHarness::render_with`] returns a **byte-identical**
//! report for any worker count — the differential guarantee the golden
//! and determinism suites pin down. Cell assertions (the experiments'
//! paper-claim checks) panic inside the fan-out and are propagated to the
//! caller by `par_map`, so the harness keeps the binaries' teeth.

use zigzag_bcm::par::{par_map_with, thread_count};

/// What one cell contributes to the report: a block of text (typically
/// one table row, trailing newline included) plus numeric metrics for
/// cross-cell footers.
#[derive(Debug, Clone, Default)]
pub struct CellOutput {
    /// Rendered report text.
    pub text: String,
    /// Numeric payload folded by the section footer (meaning is
    /// section-specific).
    pub metrics: Vec<i64>,
}

impl CellOutput {
    /// A text-only cell output.
    pub fn text(text: impl Into<String>) -> Self {
        CellOutput {
            text: text.into(),
            metrics: Vec::new(),
        }
    }

    /// A cell output with metrics for the section footer.
    pub fn with_metrics(text: impl Into<String>, metrics: Vec<i64>) -> Self {
        CellOutput {
            text: text.into(),
            metrics,
        }
    }
}

impl From<String> for CellOutput {
    fn from(text: String) -> Self {
        CellOutput::text(text)
    }
}

type CellFn = Box<dyn Fn() -> CellOutput + Send + Sync>;
type FooterFn = Box<dyn Fn(&[CellOutput]) -> String + Send + Sync>;

/// One table (or block) of an experiment: preamble, independent cells,
/// optional footer over the collected cell outputs.
pub struct Section {
    preamble: String,
    cells: Vec<CellFn>,
    footer: Option<FooterFn>,
    serial: bool,
}

impl Section {
    /// Creates a section whose preamble (title and table header, with its
    /// own newlines) precedes the cell rows.
    pub fn new(preamble: impl Into<String>) -> Self {
        Section {
            preamble: preamble.into(),
            cells: Vec::new(),
            footer: None,
            serial: false,
        }
    }

    /// Marks the section's cells to run serially on the reassembly pass,
    /// *after* the parallel fan-out has drained — for cells that take
    /// wall-clock measurements and must not share the CPU with sibling
    /// cells. Output position is unchanged.
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Appends an independent cell.
    pub fn cell(mut self, f: impl Fn() -> CellOutput + Send + Sync + 'static) -> Self {
        self.cells.push(Box::new(f));
        self
    }

    /// Sets the footer: runs serially after every cell of the section has
    /// completed, sees all cell outputs in order, may assert cross-cell
    /// invariants, and its return value is appended to the report.
    pub fn footer(mut self, f: impl Fn(&[CellOutput]) -> String + Send + Sync + 'static) -> Self {
        self.footer = Some(Box::new(f));
        self
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

impl std::fmt::Debug for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Section")
            .field("cells", &self.cells.len())
            .field("footer", &self.footer.is_some())
            .finish_non_exhaustive()
    }
}

/// A named scenario family: the declarative form of one `exp_*` binary.
#[derive(Debug)]
pub struct Experiment {
    name: &'static str,
    sections: Vec<Section>,
}

impl Experiment {
    /// Creates an empty experiment.
    pub fn new(name: &'static str) -> Self {
        Experiment {
            name,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn section(mut self, s: Section) -> Self {
        self.sections.push(s);
        self
    }

    /// The experiment's name (used for golden-file paths).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total cells across sections.
    pub fn cell_count(&self) -> usize {
        self.sections.iter().map(Section::cell_count).sum()
    }

    /// Renders just this experiment (see [`ExperimentHarness::render`]).
    pub fn render(self) -> String {
        ExperimentHarness::new().experiment(self).render()
    }
}

/// Executes experiments with family-level parallelism; see the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct ExperimentHarness {
    experiments: Vec<Experiment>,
}

impl ExperimentHarness {
    /// Creates an empty harness.
    pub fn new() -> Self {
        ExperimentHarness::default()
    }

    /// Adds an experiment.
    pub fn experiment(mut self, e: Experiment) -> Self {
        self.experiments.push(e);
        self
    }

    /// Adds many experiments.
    pub fn experiments(mut self, es: impl IntoIterator<Item = Experiment>) -> Self {
        self.experiments.extend(es);
        self
    }

    /// Total cells across all experiments.
    pub fn cell_count(&self) -> usize {
        self.experiments.iter().map(Experiment::cell_count).sum()
    }

    /// Renders the full report using the default worker count
    /// ([`thread_count`]; `ZIGZAG_THREADS` overrides).
    pub fn render(&self) -> String {
        self.render_with(thread_count())
    }

    /// Renders the full report with an explicit worker count. The output
    /// is byte-identical for every `workers` value: all cells across all
    /// experiments fan out as one order-preserving parallel map, and
    /// reassembly is positional.
    pub fn render_with(&self, workers: usize) -> String {
        let cells: Vec<&CellFn> = self
            .experiments
            .iter()
            .flat_map(|e| {
                e.sections
                    .iter()
                    .filter(|s| !s.serial)
                    .flat_map(|s| s.cells.iter())
            })
            .collect();
        let mut outputs = par_map_with(workers, &cells, |c| c()).into_iter();

        let mut report = String::new();
        for e in &self.experiments {
            for s in &e.sections {
                report.push_str(&s.preamble);
                let collected: Vec<CellOutput> = if s.serial {
                    // Measured after the fan-out has drained, one cell at
                    // a time — no sibling contention on the wall clock.
                    s.cells.iter().map(|c| c()).collect()
                } else {
                    s.cells
                        .iter()
                        .map(|_| outputs.next().expect("one output per cell"))
                        .collect()
                };
                for out in &collected {
                    report.push_str(&out.text);
                }
                if let Some(footer) = &s.footer {
                    report.push_str(&footer(&collected));
                }
            }
        }
        report
    }
}

/// Binary entry point: renders one experiment with the default worker
/// count and prints it. Every `exp_*` binary is this one line.
pub fn run_main(experiment: Experiment) {
    print!("{}", experiment.render());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn toy(counter: Arc<AtomicUsize>) -> Experiment {
        let mut section = Section::new("title\n");
        for i in 0..7u32 {
            let counter = counter.clone();
            section = section.cell(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                CellOutput::with_metrics(format!("row {i}\n"), vec![i as i64])
            });
        }
        Experiment::new("toy").section(section.footer(|cells| {
            let sum: i64 = cells.iter().flat_map(|c| c.metrics.iter()).sum();
            format!("sum {sum}\n")
        }))
    }

    #[test]
    fn render_is_worker_count_invariant() {
        let c = Arc::new(AtomicUsize::new(0));
        let h = ExperimentHarness::new()
            .experiment(toy(c.clone()))
            .experiment(toy(c.clone()));
        assert_eq!(h.cell_count(), 14);
        let serial = h.render_with(1);
        let parallel = h.render_with(8);
        assert_eq!(serial, parallel);
        assert_eq!(serial, h.render());
        assert_eq!(c.load(Ordering::Relaxed), 14 * 3, "cells ran per render");
        assert!(serial.starts_with("title\nrow 0\n"));
        assert!(serial.contains("sum 21\n"));
    }

    #[test]
    fn empty_sections_and_harnesses_render() {
        let h = ExperimentHarness::new();
        assert_eq!(h.render(), "");
        let e = Experiment::new("empty").section(Section::new("p\n"));
        assert_eq!(e.name(), "empty");
        assert_eq!(e.cell_count(), 0);
        assert_eq!(e.render(), "p\n");
        let o = CellOutput::text("x");
        assert_eq!(o.text, "x");
        let from: CellOutput = String::from("y").into();
        assert!(from.metrics.is_empty());
    }

    #[test]
    fn serial_sections_render_in_place() {
        let order: Arc<std::sync::Mutex<Vec<u32>>> = Arc::default();
        let (o1, o2) = (order.clone(), order.clone());
        let e = Experiment::new("mixed")
            .section(Section::new("timed\n").serial().cell(move || {
                o1.lock().unwrap().push(1);
                CellOutput::text("slow row\n")
            }))
            .section(Section::new("fast\n").cell(move || {
                o2.lock().unwrap().push(2);
                CellOutput::text("fast row\n")
            }));
        let h = ExperimentHarness::new().experiment(e);
        assert_eq!(h.render_with(4), "timed\nslow row\nfast\nfast row\n");
        // The serial cell ran after the fan-out drained, yet its output
        // keeps its declared position.
        assert_eq!(*order.lock().unwrap(), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "cell assertion")]
    fn cell_panics_propagate() {
        let e =
            Experiment::new("panics").section(Section::new("").cell(|| panic!("cell assertion")));
        let _ = ExperimentHarness::new().experiment(e).render_with(4);
    }
}
