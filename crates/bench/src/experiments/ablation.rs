//! Ablation: certificate families and graph algorithms.
//!
//! 1. **Certificate families** — for random node pairs, the best
//!    single-fork certificate (Figure 1 folklore) vs the best bounded
//!    zigzag (exhaustive, Definition 6) vs the bounds-graph longest path
//!    (the Theorem 2 optimum). Quantifies how much of the optimum each
//!    family captures — the paper's case that zigzags are a *strictly*
//!    richer and ultimately complete family.
//! 2. **Longest-path algorithm** — dense Bellman–Ford vs queue-based SPFA
//!    over the frozen CSR vs the memoized cached-CSR path (warm hits):
//!    identical answers, very different work. The timing columns are
//!    wall-clock and only rendered at [`Profile::Full`]; the smoke
//!    profile checks agreement alone so its report stays deterministic.

use std::time::Instant;

use zigzag_bcm::{NodeId, ProcessId};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::enumerate::{best_single_fork, best_zigzag, EnumLimits};

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, kicked_run, scaled_context};

const WIDTHS_A: [usize; 5] = [6, 8, 14, 14, 14];
const WIDTHS_B_FULL: [usize; 7] = [6, 9, 9, 12, 12, 14, 10];
const WIDTHS_B_SMOKE: [usize; 4] = [6, 9, 9, 10];

fn families_section(p: Profile) -> Section {
    let seeds: u64 = p.pick(6, 2);
    // The zigzag enumeration is exponential in its limits; the smoke
    // profile trims the horizon, pair count and fork budget so the tier
    // stays debug-build fast while the fork-vs-zigzag ordering survives.
    let horizon = p.pick(22u64, 16);
    let pair_nodes = p.pick(6usize, 5);
    let limits = EnumLimits {
        max_leg_len: 3,
        max_forks: p.pick(3, 2),
    };
    let mut section = Section::new(format!(
        "Ablation A — certificate families (random 4-process networks)\n\n{}",
        format_header(
            &WIDTHS_A,
            &[
                "seed",
                "pairs",
                "fork = opt",
                "zigzag = opt",
                "zigzag > fork",
            ],
        ),
    ));
    for seed in 0..seeds {
        section = section.cell(move || {
            let ctx = scaled_context(4, 0.45, seed + 40);
            let run = kicked_run(&ctx, ProcessId::new(0), 2, horizon, seed);
            let gb = BoundsGraph::of_run(&run);
            let nodes: Vec<NodeId> = run
                .nodes()
                .map(|r| r.id())
                .filter(|n| !n.is_initial())
                .take(pair_nodes)
                .collect();
            let (mut pairs, mut f_opt, mut z_opt, mut z_gt_f) = (0i64, 0i64, 0i64, 0i64);
            for &a in &nodes {
                for &b in &nodes {
                    let Some((opt, _)) = gb.longest_path(a, b).unwrap() else {
                        continue;
                    };
                    let Some(zz) = best_zigzag(&run, a, b, limits).unwrap() else {
                        continue;
                    };
                    assert!(zz.weight <= opt, "enumerated zigzag beats longest path");
                    pairs += 1;
                    let fork = best_single_fork(&run, a, b, limits).map(|(_, w)| w);
                    if fork == Some(opt) {
                        f_opt += 1;
                    }
                    if zz.weight == opt {
                        z_opt += 1;
                    }
                    if fork.is_none_or(|f| zz.weight > f) {
                        z_gt_f += 1;
                    }
                }
            }
            CellOutput::with_metrics(
                format_row(
                    &WIDTHS_A,
                    &[
                        seed.to_string(),
                        pairs.to_string(),
                        format!("{f_opt}/{pairs}"),
                        format!("{z_opt}/{pairs}"),
                        format!("{z_gt_f}/{pairs}"),
                    ],
                ),
                vec![pairs, f_opt, z_opt, z_gt_f],
            )
        });
    }
    section.footer(move |cells| {
        let total = |k: usize| -> i64 { cells.iter().map(|c| c.metrics[k]).sum() };
        let (total_pairs, fork_opt, zz_opt, zz_beats_fork) =
            (total(0), total(1), total(2), total(3));
        assert!(
            zz_opt > fork_opt,
            "zigzags should capture more optima than forks"
        );
        assert!(zz_beats_fork > 0);
        format!(
            "\nTotals: forks optimal {fork_opt}/{total_pairs}, bounded zigzags optimal \
             {zz_opt}/{total_pairs}, zigzag strictly beats fork {zz_beats_fork}/{total_pairs}.\n\
             Unbounded zigzags are complete (Theorem 2); the gap that remains is\n\
             purely the enumeration bound (legs ≤ {}, forks ≤ {}).\n\n",
            limits.max_leg_len, limits.max_forks
        )
    })
}

fn algorithms_section(p: Profile) -> Section {
    let ns: Vec<usize> = p.pick(vec![4, 8, 16, 24], vec![4, 8]);
    let header = if p.is_smoke() {
        format_header(&WIDTHS_B_SMOKE, &["procs", "vertices", "edges", "agree"])
    } else {
        format_header(
            &WIDTHS_B_FULL,
            &[
                "procs",
                "vertices",
                "edges",
                "dense (µs)",
                "SPFA (µs)",
                "cached (ns)",
                "agree",
            ],
        )
    };
    let mut section = Section::new(format!(
        "Ablation B — dense Bellman–Ford vs queue SPFA vs cached CSR\n\n{header}"
    ));
    for n in ns {
        section = section.cell(move || {
            let ctx = scaled_context(n, 0.3, 7);
            let run = kicked_run(&ctx, ProcessId::new(0), 1, 60, 3);
            let gb = BoundsGraph::of_run(&run);
            let sigma = run
                .nodes()
                .map(|r| r.id())
                .filter(|k| !k.is_initial())
                .last()
                .unwrap();
            if p.is_smoke() {
                // Deterministic profile: agreement only, no wall clocks.
                let dense = gb.graph().longest_from_dense(&sigma).unwrap();
                let lp = gb.graph().longest_from(&sigma).unwrap();
                let cached = gb.graph().longest_from_cached(&sigma).unwrap();
                let agree = dense
                    .iter()
                    .enumerate()
                    .all(|(i, d)| lp.weight(i) == *d && cached.weight(i) == *d);
                assert!(agree, "dense, SPFA and cached CSR must agree");
                return CellOutput::text(format_row(
                    &WIDTHS_B_SMOKE,
                    &[
                        n.to_string(),
                        gb.node_count().to_string(),
                        gb.edge_count().to_string(),
                        agree.to_string(),
                    ],
                ));
            }
            // Each timed closure reports mean time per call over >= 20ms.
            fn time_loop<T>(mut f: impl FnMut() -> T) -> (T, f64) {
                let t0 = Instant::now();
                let mut reps = 0u32;
                let last = loop {
                    let v = f();
                    reps += 1;
                    if t0.elapsed().as_millis() > 20 {
                        break v;
                    }
                };
                (last, t0.elapsed().as_nanos() as f64 / reps as f64)
            }
            // Dense Bellman–Ford: |V|−1 full relaxation rounds.
            let (dense, dense_ns) = time_loop(|| gb.graph().longest_from_dense(&sigma).unwrap());
            // Queue SPFA over the frozen CSR, always a fresh traversal.
            let (lp, spfa_ns) = time_loop(|| gb.graph().longest_from(&sigma).unwrap());
            // Cached CSR: the memoized path, warm after the first touch.
            gb.graph().longest_from_cached(&sigma).unwrap();
            let (cached, cached_ns) = time_loop(|| gb.graph().longest_from_cached(&sigma).unwrap());
            let mut agree = true;
            for (i, d) in dense.iter().enumerate() {
                if lp.weight(i) != *d || cached.weight(i) != *d {
                    agree = false;
                }
            }
            assert!(agree, "dense, SPFA and cached CSR must agree");
            CellOutput::text(format_row(
                &WIDTHS_B_FULL,
                &[
                    n.to_string(),
                    gb.node_count().to_string(),
                    gb.edge_count().to_string(),
                    format!("{:.0}", dense_ns / 1e3),
                    format!("{:.0}", spfa_ns / 1e3),
                    format!("{cached_ns:.0}"),
                    agree.to_string(),
                ],
            ))
        });
    }
    section
        .serial() // wall-clock cells must not share the CPU with siblings
        .footer(|_| {
            "\nIdentical answers; SPFA does strictly less work than dense on these\n\
             sparse, mostly-DAG-like bounds graphs, and the memoized CSR path\n\
             answers warm repeats in constant time — the shared-analysis design.\n"
                .into()
        })
}

/// Builds the ablation family: certificate families + longest-path
/// algorithm comparison.
pub fn experiment(p: Profile) -> Experiment {
    Experiment::new("ablation")
        .section(families_section(p))
        .section(algorithms_section(p))
}
