//! E9 (§1 headline): how much earlier can B act? Sweeps the separation
//! `x` on the Figure 1 and Figure 2b workloads and compares the optimal
//! zigzag protocol against the simple-fork and asynchronous baselines:
//! action rate and mean action time. Each `(workload, x)` row is an
//! independent harness cell, so whole rows fan across threads.
//!
//! Expected shape: zigzag ≡ fork on fork-only topologies (Figure 1);
//! zigzag acts strictly beyond the fork's ceiling on Figure 2b; the async
//! baseline, when it can act at all, acts latest.

use zigzag_bcm::Time;
use zigzag_coord::{
    compare_grid_with, AsyncChainStrategy, CompareJob, CoordKind, OptimalStrategy, Scenario,
    SimpleForkStrategy, StrategyFactory, TimedCoordination,
};

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{fig1_context, fig2_context, format_header, format_row};

const WIDTHS: [usize; 4] = [4, 20, 20, 20];

fn sweep_row(label: &str, scenario: &Scenario, seeds: u64) -> CellOutput {
    let mut cells = vec![label.to_string()];
    let factories: [StrategyFactory<'_>; 3] = [
        &|| Box::new(OptimalStrategy::new()),
        &|| Box::new(SimpleForkStrategy::default()),
        &|| Box::new(AsyncChainStrategy::new()),
    ];
    // One fused heterogeneous-strategy job — the same batch API (and the
    // same fold) `compare_strategies` uses. Worker count 1: the harness
    // already fans rows across threads; the fold is count-invariant.
    let job = CompareJob {
        scenario: scenario.clone(),
        strategies: factories.to_vec(),
        seeds: 0..seeds,
    };
    let row = compare_grid_with(1, std::slice::from_ref(&job))
        .unwrap()
        .pop()
        .expect("one row per job");
    for out in row {
        assert_eq!(out.violations, 0, "baseline violated its spec");
        cells.push(match out.mean_b_time() {
            None => "abstains".into(),
            Some(mean) => format!("{}/{seeds} @ t̄={mean:.1}", out.acted),
        });
    }
    CellOutput::text(format_row(&WIDTHS, &cells))
}

fn section_for(title: &str, rows: Vec<(String, Scenario)>, seeds: u64) -> Section {
    let mut s = Section::new(format!(
        "{title}\n{}",
        format_header(
            &WIDTHS,
            &["x", "optimal-zigzag", "simple-fork", "async-chain"],
        ),
    ));
    for (label, sc) in rows {
        s = s.cell(move || sweep_row(&label, &sc, seeds));
    }
    s.footer(|_| "\n".into())
}

/// Builds the E9 family: four workload sections, one cell per row.
pub fn experiment(p: Profile) -> Experiment {
    let seeds = p.pick(40u64, 6);

    // Figure 1 workload (fork weight 4; A→B chain for the async baseline).
    let fig1_xs: Vec<i64> = p.pick(vec![-2, 0, 2, 4, 5], vec![-2, 4, 5]);
    let fig1: Vec<(String, Scenario)> = fig1_xs
        .into_iter()
        .map(|x| {
            let (ctx, c, a, b) = {
                let mut nb = zigzag_bcm::Network::builder();
                let c = nb.add_process("C");
                let a = nb.add_process("A");
                let b = nb.add_process("B");
                nb.add_channel(c, a, 2, 5).unwrap();
                nb.add_channel(c, b, 9, 12).unwrap();
                nb.add_channel(a, b, 1, 4).unwrap();
                (nb.build().unwrap(), c, a, b)
            };
            let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
            (
                x.to_string(),
                Scenario::new(spec, ctx, Time::new(3), Time::new(90)).unwrap(),
            )
        })
        .collect();

    // Figure 2b workload (fork ceiling 4, zigzag ceiling 6).
    let fig2b_xs: Vec<i64> = p.pick(vec![2, 4, 5, 6, 7], vec![4, 6, 7]);
    let fig2b: Vec<(String, Scenario)> = fig2b_xs
        .into_iter()
        .map(|x| {
            let (ctx, [a, b, c, _d, e]) = fig2_context(true);
            let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
            let sc = Scenario::new(spec, ctx, Time::new(2), Time::new(130))
                .unwrap()
                .with_external(Time::new(25), e, "kick_e");
            (x.to_string(), sc)
        })
        .collect();

    // Early coordination (Figure 1 with reversed bound asymmetry).
    let early_xs: Vec<i64> = p.pick(vec![2, 6, 8, 9], vec![2, 8, 9]);
    let early: Vec<(String, Scenario)> = early_xs
        .into_iter()
        .map(|x| {
            let (ctx, c, a, b) = fig1_context(10, 12, 1, 2);
            let spec = TimedCoordination::new(CoordKind::Early { x }, a, b, c);
            (
                x.to_string(),
                Scenario::new(spec, ctx, Time::new(2), Time::new(90)).unwrap(),
            )
        })
        .collect();

    // Window coordination (two-sided): the fig-1 knowledge band is
    // [L_CB − U_CA, U_CB − L_CA] = [4, 10]; only windows covering it work.
    let windows: Vec<(i64, i64)> = p.pick(
        vec![(4, 10), (0, 20), (5, 20), (4, 9)],
        vec![(4, 10), (4, 9)],
    );
    let window: Vec<(String, Scenario)> = windows
        .into_iter()
        .map(|(lo, hi)| {
            let (ctx, c, a, b) = fig1_context(2, 5, 9, 12);
            let spec = TimedCoordination::new(
                CoordKind::Window {
                    after: lo,
                    within: hi,
                },
                a,
                b,
                c,
            );
            (
                (lo * 100 + hi).to_string(), // display key
                Scenario::new(spec, ctx, Time::new(3), Time::new(90)).unwrap(),
            )
        })
        .collect();

    Experiment::new("protocol_compare")
        .section(section_for(
            &format!(
                "E9 — earliest safe action: optimal vs baselines ({seeds} seeds)\n\n\
                 Figure 1 topology — Late⟨a --x--> b⟩:"
            ),
            fig1,
            seeds,
        ))
        .section(section_for(
            "Figure 2b topology — Late⟨a --x--> b⟩ (fork ceiling 4, zigzag 6):",
            fig2b,
            seeds,
        ))
        .section(section_for(
            "Early⟨b --x--> a⟩ — C→A [10,12], C→B [1,2] (threshold 8):",
            early,
            seeds,
        ))
        .section(
            section_for(
                "Window⟨a --[lo,hi]--> b⟩ — rows keyed lo·100+hi (band [4,10]):",
                window,
                seeds,
            )
            .footer(|_| {
                "\nCrossovers: fork == zigzag where single forks suffice; zigzag alone\n\
                 covers the (fork ceiling, zigzag ceiling] band; async acts latest and\n\
                 only for Late x <= 0.\n"
                    .into()
            }),
        )
}
