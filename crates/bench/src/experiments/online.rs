//! O (PR 3, facade since PR 4): the incremental streaming engine,
//! exercised online **through `zigzag_api::ZigzagService`** — the same
//! dispatch code path production callers use.
//!
//! Three claims, each checked per cell (so the binary has teeth and the
//! golden snapshot pins the numbers):
//!
//! * **O1 — prefix-differential equality**: feeding a recorded schedule
//!   event-by-event into a facade stream session, the all-pairs
//!   threshold matrix dispatched at every appended node equals a freshly
//!   built batch [`KnowledgeEngine`] on the same prefix, cell for cell;
//! * **O2 — online coordination**: replaying Figure 1 schedules through
//!   a spec-configured stream session, the earliest event at which `B`'s
//!   knowledge holds (`Query::CoordDecision`) is exactly the node where
//!   the batch Protocol 2 acted;
//! * **O3 — delta-relaxed global bounds**: the session's dispatched
//!   `TightBound` answers, delta-relaxed across appends, equal a
//!   from-scratch [`BoundsGraph`] per prefix.
//!
//! All report text is byte-deterministic in both profiles (counts and
//! times only — wall-clock comparisons live in `benches/online.rs`).

use zigzag_api::{Query, Response, SessionConfig, ZigzagService};
use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::{ProcessId, RunCursor, Time};
use zigzag_coord::{CoordKind, OptimalStrategy, Scenario, TimedCoordination};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::knowledge::KnowledgeEngine;

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, kicked_run, scaled_context};

const O1_WIDTHS: [usize; 5] = [3, 8, 7, 10, 10];

/// One O1 row: stream a random-topology schedule into a facade session
/// and check the dispatched matrix at every appended node against a
/// scratch batch engine.
fn o1_row(n: usize, seed: u64, horizon: u64) -> CellOutput {
    let ctx = scaled_context(n, 0.3, seed);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, horizon, seed);
    let mut cursor = RunCursor::new(&run);
    let service = ZigzagService::new();
    let session = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
    let mut events = 0usize;
    let mut cells = 0usize;
    while let Some(ev) = cursor.next_event() {
        let node = service.append(session, &ev).expect("legal feed").node;
        let Response::MaxXMatrix(online) = service
            .dispatch(session, &Query::MaxXMatrix { sigma: node })
            .expect("observer exists")
        else {
            unreachable!("matrix queries return matrices");
        };
        let batch = service
            .with_run(session, |prefix| {
                KnowledgeEngine::new(prefix, node)
                    .expect("observer exists")
                    .max_x_basic_matrix()
                    .expect("legal prefix")
            })
            .expect("open session");
        assert_eq!(online, batch, "streaming matrix diverged at {node}");
        events += 1;
        cells += online.len() * online.len();
    }
    assert!(
        service
            .with_run(session, |grown| grown == &run)
            .expect("open session"),
        "grown run is not the recorded run"
    );
    CellOutput::with_metrics(
        format_row(
            &O1_WIDTHS,
            &[
                n.to_string(),
                format!("s{seed}"),
                events.to_string(),
                cells.to_string(),
                "identical".into(),
            ],
        ),
        vec![events as i64, cells as i64],
    )
}

const O2_WIDTHS: [usize; 5] = [4, 6, 12, 12, 9];

/// One O2 row: batch protocol decision vs streaming first-knowledge,
/// replayed through a spec-configured facade session.
fn o2_row(x: i64, seed: u64) -> CellOutput {
    let (ctx, c, a, b) = crate::fig1_context(2, 5, 9, 12);
    let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
    let sc = Scenario::new(spec.clone(), ctx, Time::new(3), Time::new(80)).unwrap();
    let (run, verdict) = sc
        .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
        .expect("legal scenario");
    let service = ZigzagService::new();
    let (session, reports) = service
        .open_replay(&run, SessionConfig::new().spec(spec))
        .expect("legal replay");
    let Response::CoordDecision(coord) = service
        .dispatch(session, &Query::CoordDecision)
        .expect("spec configured")
    else {
        unreachable!("coordination queries return coordination reports");
    };
    assert_eq!(
        coord.first_known, verdict.b_node,
        "x={x} seed {seed}: online decision diverged from the batch protocol"
    );
    let show = |t: Option<Time>| t.map_or("abstains".to_string(), |t| t.to_string());
    CellOutput::with_metrics(
        format_row(
            &O2_WIDTHS,
            &[
                x.to_string(),
                format!("s{seed}"),
                show(coord.first_known.and_then(|n| run.time(n))),
                show(verdict.b_time),
                "agree".into(),
            ],
        ),
        vec![reports.len() as i64],
    )
}

const O3_WIDTHS: [usize; 4] = [3, 8, 7, 10];

/// One O3 row: delta-relaxed GB tight bounds (dispatched through the
/// facade) vs scratch rebuilds.
fn o3_row(n: usize, seed: u64, horizon: u64) -> CellOutput {
    let ctx = scaled_context(n, 0.4, seed + 100);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, horizon, seed);
    let mut cursor = RunCursor::new(&run);
    let service = ZigzagService::new();
    let session = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
    let anchor = zigzag_bcm::NodeId::new(ProcessId::new(0), 1);
    let mut checks = 0usize;
    while let Some(ev) = cursor.next_event() {
        let node = service.append(session, &ev).expect("legal feed").node;
        let (recorded, want) = service
            .with_run(session, |prefix| {
                let recorded = prefix.appears(anchor);
                let want = recorded.then(|| {
                    BoundsGraph::of_run(prefix)
                        .longest_path(anchor, node)
                        .expect("anchor recorded")
                        .map(|(w, _)| w)
                });
                (recorded, want)
            })
            .expect("open session");
        if !recorded {
            continue;
        }
        // The cached source stays warm, so each append delta-relaxes.
        let Response::TightBound(got) = service
            .dispatch(
                session,
                &Query::TightBound {
                    from: anchor,
                    to: node,
                },
            )
            .expect("anchor recorded")
        else {
            unreachable!("tight-bound queries return tight bounds");
        };
        assert_eq!(Some(got), want, "delta GB bound diverged at {node}");
        checks += 1;
    }
    CellOutput::with_metrics(
        format_row(
            &O3_WIDTHS,
            &[
                n.to_string(),
                format!("s{seed}"),
                checks.to_string(),
                "identical".into(),
            ],
        ),
        vec![checks as i64],
    )
}

/// Builds the online experiment family.
pub fn experiment(p: Profile) -> Experiment {
    let o1_cases: Vec<(usize, u64, u64)> = p.pick(
        vec![(4, 0, 24), (4, 1, 24), (6, 0, 26), (6, 2, 26), (9, 1, 24)],
        vec![(4, 0, 16), (5, 1, 14)],
    );
    let mut o1 = Section::new(format!(
        "O — the incremental streaming engine online\n\n\
         O1 — prefix-differential equality (matrix at every appended node):\n{}",
        format_header(&O1_WIDTHS, &["n", "seed", "events", "cells", "verdict"]),
    ));
    for (n, seed, horizon) in o1_cases {
        o1 = o1.cell(move || o1_row(n, seed, horizon));
    }
    let o1 = o1.footer(|cells| {
        let events: i64 = cells.iter().map(|c| c.metrics[0]).sum();
        let checked: i64 = cells.iter().map(|c| c.metrics[1]).sum();
        format!("all {events} appends matched the batch engine ({checked} cells)\n\n")
    });

    let o2_cases: Vec<(i64, u64)> = p.pick(
        vec![(4, 0), (4, 1), (4, 2), (5, 0), (5, 1), (0, 3)],
        vec![(4, 0), (5, 0)],
    );
    let mut o2 = Section::new(format!(
        "O2 — online coordination (streaming first-knowledge vs batch Protocol 2):\n{}",
        format_header(
            &O2_WIDTHS,
            &["x", "seed", "t(online)", "t(batch)", "verdict"]
        ),
    ));
    for (x, seed) in o2_cases {
        o2 = o2.cell(move || o2_row(x, seed));
    }
    let o2 = o2.footer(|_| "\n".into());

    let o3_cases: Vec<(usize, u64, u64)> =
        p.pick(vec![(5, 0, 26), (7, 1, 24), (10, 2, 22)], vec![(4, 0, 16)]);
    let mut o3 = Section::new(format!(
        "O3 — delta-relaxed GB(r) tight bounds vs scratch rebuilds:\n{}",
        format_header(&O3_WIDTHS, &["n", "seed", "checks", "verdict"]),
    ));
    for (n, seed, horizon) in o3_cases {
        o3 = o3.cell(move || o3_row(n, seed, horizon));
    }
    let o3 = o3.footer(|_| {
        "\nEvery append delta-updates the stream's analyses in place; every\n\
         answer is byte-identical to a batch rebuild of the same prefix.\n"
            .into()
    });

    Experiment::new("online")
        .section(o1)
        .section(o2)
        .section(o3)
}
