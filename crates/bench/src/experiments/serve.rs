//! V (PR 5): the sharded serving layer — wire dispatch over worker
//! fleets and warm exclude-mode coordination.
//!
//! Two claims, each checked per cell (the golden snapshot pins the
//! counts; the assertions give the binary teeth):
//!
//! * **V1 — sharded wire dispatch**: a fixed batch of
//!   [`zigzag_api::serve`] request frames over a session mix (batch +
//!   replayed-stream sessions on a sharded table, hostile frames
//!   included) returns byte-identical response documents at every worker
//!   count, equal to the serial decode → dispatch → encode loop;
//! * **V2 — warm exclude-mode coordination**: replaying Protocol 2
//!   schedules on a feedback topology (`B` has outgoing channels,
//!   including a `B ⇄ D` cycle) through a spec-configured
//!   `ExcludeOwnSends` stream session, every per-event `B` decision —
//!   served from the incremental engine's cached own-sends-excluded
//!   observer states — equals a fresh per-prefix rebuild
//!   (`decide_at`: new `MessageIndex`, new excluded `GE`), and the final
//!   `CoordDecision` equals the in-simulation protocol's action node;
//! * **V3 — serving observability (PR 7)**: after a warm frame mix, a
//!   wire-encoded `stats` frame reports exactly the dispatch count the
//!   mix implies (hostile frames and the `stats` query itself do not
//!   count), a latency histogram with one sample per dispatch, and the
//!   observer-cache hit/miss/eviction counters — all deterministic
//!   because frames of one session are served in order by one worker.
//!
//! All report text is byte-deterministic in both profiles (counts and
//! times only — raw latency buckets never appear, and wall-clock
//! comparisons live in `benches/serve.rs` and `benches/net.rs`).

use zigzag_api::{
    serve, wire, ProbeSemantics, Query, Response, SessionConfig, SessionId, ZigzagService,
};
use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::{Network, NodeId, ProcessId, RunCursor, Time};
use zigzag_coord::{
    decide_at, CoordKind, OptimalStrategy, Scenario, StreamDriver, TimedCoordination,
};
use zigzag_core::GeneralNode;

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, kicked_run, scaled_context};

const V1_WIDTHS: [usize; 6] = [3, 7, 9, 7, 8, 10];

/// One V1 row: serve a frame batch over a sharded session mix at worker
/// counts 1/2/8 and hold every output byte to the serial reference.
fn v1_row(n: usize, shards: usize, seed: u64, horizon: u64) -> CellOutput {
    let ctx = scaled_context(n, 0.3, seed);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, horizon, seed);
    let service = ZigzagService::sharded(shards);
    let batch_a = service.open_batch(run.clone(), SessionConfig::new());
    let (stream, _) = service
        .open_replay(&run, SessionConfig::new())
        .expect("legal replay");
    let batch_b = service.open_batch(run.clone(), SessionConfig::new());
    let sessions = [batch_a, stream, batch_b];

    let nodes: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|k| !k.is_initial())
        .collect();
    let mut frames: Vec<String> = Vec::new();
    for (k, &sigma) in nodes.iter().enumerate() {
        let id = sessions[k % sessions.len()];
        frames.push(serve::encode_frame(id, &Query::MaxXMatrix { sigma }));
        frames.push(serve::encode_frame(
            id,
            &Query::QueryBatch(vec![
                Query::MaxX {
                    sigma,
                    theta1: GeneralNode::basic(nodes[0]),
                    theta2: GeneralNode::basic(sigma),
                },
                Query::TightBound {
                    from: nodes[0],
                    to: sigma,
                },
            ]),
        ));
    }
    // Deterministic failures ride along: an unknown session and an
    // unparsable frame must produce identical error documents too.
    frames.push(serve::encode_frame(
        SessionId::from_raw(4_242),
        &Query::CoordDecision,
    ));
    frames.push("zigzag-frame v1\nsession ?\n".to_string());

    let reference: Vec<String> = frames
        .iter()
        .map(|f| match serve::decode_frame(f) {
            Ok((id, q)) => match service.dispatch(id, &q) {
                Ok(r) => wire::encode_response(&r),
                Err(e) => serve::encode_error(&e),
            },
            Err(e) => serve::encode_error(&e),
        })
        .collect();
    for workers in [1usize, 2, 8] {
        assert_eq!(
            serve::serve(&service, &frames, workers),
            reference,
            "n={n} shards={shards} seed {seed}: sharded serving diverged at {workers} workers"
        );
    }
    let errors = reference
        .iter()
        .filter(|r| serve::is_error_document(r))
        .count();
    assert_eq!(errors, 2, "exactly the two hostile frames fail");
    CellOutput::with_metrics(
        format_row(
            &V1_WIDTHS,
            &[
                n.to_string(),
                shards.to_string(),
                sessions.len().to_string(),
                frames.len().to_string(),
                errors.to_string(),
                "identical".into(),
            ],
        ),
        vec![frames.len() as i64],
    )
}

const V2_WIDTHS: [usize; 6] = [4, 6, 10, 10, 10, 7];

/// The feedback scenario: `B` has outgoing channels, including a
/// `B ⇄ D` cycle — the regime where exclude-mode differs from the full
/// `GE(r, σ)`.
fn feedback_scenario(x: i64, u_bd: u64, horizon: u64) -> Scenario {
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    let d = nb.add_process("D");
    nb.add_channel(c, a, 2, 5).unwrap();
    nb.add_channel(c, b, 9, 12).unwrap();
    nb.add_channel(c, d, 1, 2).unwrap();
    nb.add_channel(b, d, 1, u_bd).unwrap();
    nb.add_channel(d, b, 1, 3).unwrap();
    let ctx = nb.build().unwrap();
    let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
    Scenario::new(spec, ctx, Time::new(3), Time::new(horizon)).unwrap()
}

/// One V2 row: warm exclude-mode decisions vs fresh per-prefix rebuilds,
/// plus the facade `CoordDecision` vs the in-simulation protocol.
fn v2_row(x: i64, u_bd: u64, seed: u64, horizon: u64) -> CellOutput {
    let sc = feedback_scenario(x, u_bd, horizon);
    let spec = sc.spec().clone();
    let (run, verdict) = sc
        .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
        .expect("legal scenario");

    // The serving path: a spec-configured exclude-mode stream session.
    let service = ZigzagService::new();
    let (session, _) = service
        .open_replay(
            &run,
            SessionConfig::new()
                .spec(spec.clone())
                .probe(ProbeSemantics::ExcludeOwnSends),
        )
        .expect("legal replay");
    let Response::CoordDecision(coord) = service
        .dispatch(session, &Query::CoordDecision)
        .expect("spec configured")
    else {
        unreachable!("coordination queries return coordination reports");
    };
    assert_eq!(
        coord.first_known, verdict.b_node,
        "x={x} seed {seed}: warm exclude-mode verdict diverged from the protocol"
    );

    // Every per-event warm decision equals a fresh rebuild on the prefix.
    let mut driver = StreamDriver::new(spec.clone(), run.context_arc(), run.horizon())
        .with_probe(ProbeSemantics::ExcludeOwnSends);
    let mut cursor = RunCursor::new(&run);
    let mut decisions = 0usize;
    while let Some(ev) = cursor.next_event() {
        let report = driver.step(&ev).expect("legal feed");
        let Some(knows) = report.b_knows else {
            continue;
        };
        let fresh = decide_at(
            &spec,
            driver.engine().run(),
            report.node,
            ProbeSemantics::ExcludeOwnSends,
        )
        .expect("legal prefix");
        assert_eq!(
            knows, fresh,
            "x={x} seed {seed}: warm decision diverged from the fresh rebuild at {}",
            report.node
        );
        decisions += 1;
    }
    assert_eq!(driver.first_known(), verdict.b_node);

    let show = |t: Option<Time>| t.map_or("abstains".to_string(), |t| t.to_string());
    CellOutput::with_metrics(
        format_row(
            &V2_WIDTHS,
            &[
                x.to_string(),
                format!("s{seed}"),
                show(coord.first_known.and_then(|n| run.time(n))),
                show(verdict.b_time),
                decisions.to_string(),
                "agree".into(),
            ],
        ),
        vec![decisions as i64],
    )
}

const V3_WIDTHS: [usize; 7] = [3, 7, 8, 6, 7, 6, 8];

/// One V3 row: serve a warm frame mix at `workers`, then read the
/// serving counters back through a wire-encoded `stats` frame and hold
/// them to the arithmetic the mix implies.
fn v3_row(n: usize, seed: u64, horizon: u64, workers: usize) -> CellOutput {
    let ctx = scaled_context(n, 0.3, seed);
    let run = kicked_run(&ctx, ProcessId::new(0), 1, horizon, seed);
    let service = ZigzagService::sharded(4);
    let batch = service.open_batch(run.clone(), SessionConfig::new());
    let (stream, _) = service
        .open_replay(&run, SessionConfig::new())
        .expect("legal replay");
    let sessions = [batch, stream];

    let nodes: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|k| !k.is_initial())
        .collect();
    let mut frames: Vec<String> = nodes
        .iter()
        .enumerate()
        .map(|(k, &sigma)| serve::encode_frame(sessions[k % 2], &Query::MaxXMatrix { sigma }))
        .collect();
    // One hostile frame: answered with an error document, and therefore
    // absent from the dispatch and latency counters.
    frames.push(serve::encode_frame(
        SessionId::from_raw(9_999),
        &Query::CoordDecision,
    ));
    // Two passes of the same mix: the first populates the observer
    // caches (all misses), the second is served from them (all hits).
    for pass in 0..2 {
        let answers = serve::serve(&service, &frames, workers);
        assert_eq!(
            answers
                .iter()
                .filter(|r| serve::is_error_document(r))
                .count(),
            1,
            "n={n} seed {seed} pass {pass}: exactly the hostile frame fails"
        );
    }

    // Observability is itself a wire query; it must not count itself.
    let stats_frame = serve::encode_frame(SessionId::from_raw(0), &Query::Stats);
    let doc = serve::serve(&service, &[stats_frame], workers);
    let report = match wire::decode_response(&doc[0]) {
        Ok(Response::Stats(report)) => report,
        other => panic!("n={n} seed {seed}: stats frame misanswered: {other:?}"),
    };
    let dispatched = 2 * (frames.len() - 1) as u64;
    assert_eq!(
        report.queries, dispatched,
        "n={n} seed {seed}: dispatch counter off"
    );
    assert_eq!(
        report.latency.count(),
        dispatched,
        "n={n} seed {seed}: one latency sample per dispatch"
    );
    assert!(
        report.observer_misses > 0,
        "n={n} seed {seed}: the first pass must populate the observer cache"
    );
    assert!(
        report.observer_hits > 0,
        "n={n} seed {seed}: the second pass must be served from the cache"
    );
    assert_eq!(
        report.sessions_per_shard.iter().sum::<u64>(),
        sessions.len() as u64,
        "n={n} seed {seed}: every open session is visible per shard"
    );
    assert!(
        report.queue_depths.is_empty(),
        "the in-process loop has no worker queues to report"
    );
    CellOutput::with_metrics(
        format_row(
            &V3_WIDTHS,
            &[
                n.to_string(),
                frames.len().to_string(),
                report.queries.to_string(),
                report.observer_hits.to_string(),
                report.observer_misses.to_string(),
                report.observer_evictions.to_string(),
                "counted".into(),
            ],
        ),
        vec![report.queries as i64],
    )
}

/// Builds the serving experiment family.
pub fn experiment(p: Profile) -> Experiment {
    let v1_cases: Vec<(usize, usize, u64, u64)> = p.pick(
        vec![
            (4, 1, 0, 24),
            (4, 3, 1, 24),
            (6, 8, 0, 26),
            (6, 16, 2, 26),
            (9, 4, 1, 22),
        ],
        vec![(4, 1, 0, 16), (5, 4, 1, 14)],
    );
    let mut v1 = Section::new(format!(
        "V — the sharded serving layer\n\n\
         V1 — wire dispatch over worker fleets (responses at workers 1/2/8 vs serial):\n{}",
        format_header(
            &V1_WIDTHS,
            &["n", "shards", "sessions", "frames", "errors", "verdict"]
        ),
    ));
    for (n, shards, seed, horizon) in v1_cases {
        v1 = v1.cell(move || v1_row(n, shards, seed, horizon));
    }
    let v1 = v1.footer(|cells| {
        let frames: i64 = cells.iter().map(|c| c.metrics[0]).sum();
        format!("all {frames} frames byte-identical at every worker count\n\n")
    });

    let v2_cases: Vec<(i64, u64, u64, u64)> = p.pick(
        vec![
            (4, 4, 0, 60),
            (4, 4, 1, 60),
            (4, 9, 2, 60),
            (5, 4, 0, 60),
            (0, 2, 3, 45),
        ],
        vec![(4, 4, 0, 40), (5, 4, 1, 40)],
    );
    let mut v2 = Section::new(format!(
        "V2 — warm exclude-mode coordination (cached decision states vs fresh rebuilds):\n{}",
        format_header(
            &V2_WIDTHS,
            &["x", "seed", "t(warm)", "t(sim)", "decisions", "verdict"]
        ),
    ));
    for (x, u_bd, seed, horizon) in v2_cases {
        v2 = v2.cell(move || v2_row(x, u_bd, seed, horizon));
    }
    let v2 = v2.footer(|cells| {
        let decisions: i64 = cells.iter().map(|c| c.metrics[0]).sum();
        format!("all {decisions} B-node decisions served warm equal their fresh rebuilds\n\n")
    });

    let v3_cases: Vec<(usize, u64, u64, usize)> = p.pick(
        vec![(4, 0, 24, 1), (6, 1, 26, 2), (9, 2, 22, 8)],
        vec![(4, 0, 16, 2)],
    );
    let mut v3 = Section::new(format!(
        "V3 — serving observability (a wire `stats` frame after a warm mix):\n{}",
        format_header(
            &V3_WIDTHS,
            &["n", "frames", "queries", "hits", "misses", "evict", "verdict"]
        ),
    ));
    for (n, seed, horizon, workers) in v3_cases {
        v3 = v3.cell(move || v3_row(n, seed, horizon, workers));
    }
    let v3 = v3.footer(|cells| {
        let queries: i64 = cells.iter().map(|c| c.metrics[0]).sum();
        format!(
            "all {queries} dispatches counted, one latency sample each\n\n\
             Sessions hash to shards, workers own shards, and the warm\n\
             exclude-mode states make online Protocol 2 decisions cache-served;\n\
             every byte equals the single-threaded, rebuild-everything baseline,\n\
             and the serving counters reconcile with the frames served.\n"
        )
    });

    Experiment::new("serve").section(v1).section(v2).section(v3)
}
