//! E3 (Figure 2b): visibility makes the zigzag usable. With the `D → B`
//! report channel `B` can *know* the Eq. (1) precedence and act; without
//! it, the same pattern exists in the run but `B` never even hears the
//! trigger. Reports, per x, how often the optimal protocol acts in each
//! configuration.
//!
//! Expected shape: identical abstention without the report; action up to
//! the zigzag threshold with it.

use zigzag_bcm::Time;
use zigzag_coord::{
    Battery, CoordKind, OptimalStrategy, Scenario, StrategyFactory, TimedCoordination,
};

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{fig2_context, format_header, format_row};

const WIDTHS: [usize; 3] = [4, 18, 18];

/// Builds the E3 family: one cell per separation `x`.
pub fn experiment(p: Profile) -> Experiment {
    let seeds = p.pick(30u64, 8);
    let xs: Vec<i64> = p.pick(vec![2, 4, 5, 6, 7, 8], vec![2, 6, 8]);
    let mut section = Section::new(format!(
        "E3 / Figure 2b — σ-visibility: acting requires the D→B report\n\n{}",
        format_header(&WIDTHS, &["x", "with D→B report", "without report"]),
    ));
    for x in xs {
        section = section.cell(move || {
            let mut cells = vec![x.to_string()];
            for with_report in [true, false] {
                let (ctx, [a, b, c, _d, e]) = fig2_context(with_report);
                let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
                let scenario = Scenario::new(spec, ctx, Time::new(2), Time::new(120))
                    .unwrap()
                    .with_external(Time::new(25), e, "kick_e");
                let optimal: StrategyFactory<'_> = &|| Box::new(OptimalStrategy::new());
                let out = Battery {
                    scenario,
                    strategy: optimal,
                    seeds: 0..seeds,
                }
                .run_serial()
                .unwrap();
                assert_eq!(out.violations, 0, "optimal protocol violated the spec");
                cells.push(if out.acted == 0 {
                    "abstains".to_string()
                } else {
                    format!("acts {}/{seeds}", out.acted)
                });
            }
            CellOutput::text(format_row(&WIDTHS, &cells))
        });
    }
    Experiment::new("fig3_visible").section(section.footer(|_| {
        "\nSeries shape: without the dashed report chain B cannot detect the\n\
         pattern (Theorem 3/4) and abstains at every x; with it B acts up to\n\
         the Eq. (1)+separation threshold (6) and abstains beyond.\n"
            .into()
    }))
}
