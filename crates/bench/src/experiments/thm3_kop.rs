//! E10 (Theorem 3): knowledge of preconditions. Adversarial schedule
//! fuzzing over random networks and roles: sound strategies never violate
//! a spec and never act without a message chain from the trigger node;
//! the reckless control is caught by the verifier.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zigzag_bcm::scheduler::{EagerScheduler, LazyScheduler, RandomScheduler};
use zigzag_bcm::{ProcessId, Time};
use zigzag_coord::{
    AsyncChainStrategy, BStrategy, CoordKind, OptimalStrategy, RecklessStrategy, Scenario,
    SimpleForkStrategy, TimedCoordination,
};

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, scaled_context};

const WIDTHS: [usize; 5] = [15, 8, 8, 12, 12];

fn make_strategy(idx: usize) -> Box<dyn BStrategy> {
    match idx {
        0 => Box::new(OptimalStrategy::new()),
        1 => Box::new(SimpleForkStrategy::default()),
        2 => Box::new(AsyncChainStrategy::new()),
        _ => Box::new(RecklessStrategy),
    }
}

/// Builds the E10 family: one cell per strategy, over a shared fuzzed
/// configuration battery.
pub fn experiment(p: Profile) -> Experiment {
    let config_count = p.pick(40usize, 14);
    let mut rng = StdRng::seed_from_u64(2017);
    let mut configs = Vec::new();
    for _ in 0..config_count {
        let n = rng.gen_range(3..=6);
        let seed = rng.gen::<u64>();
        let x = rng.gen_range(-3i64..6);
        let late = rng.gen_bool(0.5);
        configs.push((n, seed, x, late));
    }

    let mut section = Section::new(format!(
        "E10 / Theorem 3 — knowledge-of-preconditions fuzz\n\n{}",
        format_header(
            &WIDTHS,
            &["strategy", "runs", "acted", "blind acts", "violations"],
        ),
    ));
    for idx in 0..4usize {
        let configs = configs.clone();
        let sound = idx != 3;
        section = section.cell(move || {
            let mut runs = 0u32;
            let mut acted = 0u32;
            let mut blind = 0u32;
            let mut violations = 0u32;
            let mut name = String::new();
            for &(n, seed, x, late) in &configs {
                let ctx = scaled_context(n, 0.35, seed);
                let c = ProcessId::new(0);
                let a = ctx.network().out_neighbors(c)[0];
                let b = ProcessId::new((n - 1) as u32);
                let kind = if late {
                    CoordKind::Late { x }
                } else {
                    CoordKind::Early { x }
                };
                let spec = TimedCoordination::new(kind, a, b, c);
                let Ok(sc) = Scenario::new(spec, ctx, Time::new(2), Time::new(60)) else {
                    continue;
                };
                for sched in 0..3u8 {
                    let mut strategy = make_strategy(idx);
                    name = strategy.name().to_string();
                    let result = match sched {
                        0 => sc.run_verified(strategy.as_mut(), &mut RandomScheduler::seeded(seed)),
                        1 => sc.run_verified(strategy.as_mut(), &mut EagerScheduler),
                        _ => sc.run_verified(strategy.as_mut(), &mut LazyScheduler),
                    };
                    let Ok((_, v)) = result else { continue };
                    runs += 1;
                    violations += !v.ok as u32;
                    if v.b_node.is_some() {
                        acted += 1;
                        blind += !v.b_heard_go as u32;
                    }
                }
            }
            if sound {
                assert_eq!(violations, 0, "sound strategy violated a spec");
                assert_eq!(blind, 0, "sound strategy acted without hearing the trigger");
            } else {
                assert!(violations > 0, "the adversarial harness caught nothing");
            }
            CellOutput::text(format_row(
                &WIDTHS,
                &[
                    name,
                    runs.to_string(),
                    acted.to_string(),
                    blind.to_string(),
                    violations.to_string(),
                ],
            ))
        });
    }
    Experiment::new("thm3_kop").section(section.footer(|_| {
        "\nSeries shape: zero violations and zero blind actions for every\n\
         sound strategy (Theorem 3); the reckless control is caught, showing\n\
         the harness has teeth.\n"
            .into()
    }))
}
