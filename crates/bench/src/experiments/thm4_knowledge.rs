//! E8 (Figures 4–5 / Theorem 4): the knowledge characterization. On
//! random networks, for every σ-recognized node pair:
//!
//! * positive side — the max-x answer is witnessed by a σ-visible zigzag
//!   of exactly that weight, which re-validates in the run;
//! * negative side — the claim at `max-x + 1` (or any x when unreachable)
//!   is refuted by a certified-legal run indistinguishable at σ.

use zigzag_bcm::validate::{validate_run, Strictness};
use zigzag_bcm::{NodeId, ProcessId};
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::precedence::satisfies;
use zigzag_core::{CoreError, GeneralNode};

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, kicked_run, scaled_context};

const WIDTHS: [usize; 6] = [6, 8, 10, 12, 12, 11];

/// Builds the E8 family: one cell per network size.
pub fn experiment(p: Profile) -> Experiment {
    let seeds = p.pick(8u64, 3);
    let ns: Vec<usize> = p.pick(vec![3, 5, 8], vec![3, 5]);
    let mut section = Section::new(format!(
        "E8 / Theorem 4 — knowledge ⇔ σ-visible zigzag, mechanically\n\n{}",
        format_header(
            &WIDTHS,
            &[
                "procs",
                "pairs",
                "known",
                "witness ok",
                "refuted ok",
                "unreachable",
            ],
        ),
    ));
    for n in ns {
        section = section.cell(move || {
            let (mut pairs, mut known, mut wit_ok, mut ref_ok, mut unreach) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            let mut wit_seen = 0u64;
            for seed in 0..seeds {
                let ctx = scaled_context(n, 0.4, seed + 900);
                let run = kicked_run(&ctx, ProcessId::new(0), 2, 45, seed);
                let Some(sigma) = run
                    .nodes()
                    .map(|r| r.id())
                    .filter(|k| !k.is_initial())
                    .last()
                else {
                    continue;
                };
                let engine = KnowledgeEngine::new(&run, sigma).unwrap();
                let past = run.past(sigma);
                let nodes: Vec<NodeId> = past.iter().filter(|k| !k.is_initial()).take(6).collect();
                for &x in &nodes {
                    for &y in &nodes {
                        pairs += 1;
                        let (tx, ty) = (GeneralNode::basic(x), GeneralNode::basic(y));
                        let m = engine.max_x(&tx, &ty).unwrap();
                        match m {
                            Some(m) => {
                                known += 1;
                                let (w, vz) = engine.witness(&tx, &ty).unwrap().expect("witness");
                                assert_eq!(w, m);
                                match vz.validate(&run) {
                                    Ok(report) => {
                                        wit_seen += 1;
                                        if report.weight == m {
                                            wit_ok += 1;
                                        }
                                    }
                                    Err(CoreError::HorizonTooSmall { .. }) => {}
                                    Err(e) => panic!("witness invalid: {e}"),
                                }
                            }
                            None => unreach += 1,
                        }
                        // Refute one past the threshold.
                        let x_claim = m.map_or(-3, |m| m + 1);
                        let fr = engine
                            .refute(&tx, &ty, x_claim)
                            .unwrap()
                            .expect("refutable");
                        validate_run(&fr.run, Strictness::Strict).expect("refutation legal");
                        if !satisfies(&fr.run, &tx, &ty, x_claim).unwrap() {
                            ref_ok += 1;
                        }
                    }
                }
            }
            assert_eq!(wit_ok, wit_seen, "witness weight mismatch at n={n}");
            assert_eq!(ref_ok, pairs, "unrefuted over-claim at n={n}");
            CellOutput::text(format_row(
                &WIDTHS,
                &[
                    n.to_string(),
                    pairs.to_string(),
                    known.to_string(),
                    format!("{wit_ok}/{wit_seen}"),
                    format!("{ref_ok}/{pairs}"),
                    unreach.to_string(),
                ],
            ))
        });
    }
    Experiment::new("thm4_knowledge").section(section.footer(|_| {
        "\nSeries shape: every knowledge claim is certified by an\n\
         independently validated witness; every over-claim is refuted by a\n\
         legal indistinguishable run. This is Theorem 4, mechanized.\n"
            .into()
    }))
}
