//! E2 (Figure 2a + Equation 1): zigzag-based precedence. Sweeps the
//! channel bounds of the five-process zigzag network and reports the
//! Eq. (1) budget `−U_CA + L_CD − U_ED + L_EB`, the realized zigzag
//! weight (budget + junction separation), and the worst observed
//! `t_b − t_a` over schedules in which the pattern exists.
//!
//! Expected shape: gap > budget in every zigzag run — the paper's
//! `t_b > t_a + x` — and the weight is the tight certificate.

use zigzag_bcm::protocols::Ffip;
use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::{NetPath, Network, SimConfig, Simulator, Time};
use zigzag_core::{GeneralNode, TwoLeggedFork, ZigzagPattern};

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, mean, min};

const WIDTHS: [usize; 6] = [6, 8, 10, 9, 9, 9];

/// Builds the E2 family: one cell per `L_CD` setting.
pub fn experiment(p: Profile) -> Experiment {
    let seeds = p.pick(80u64, 12);
    let lcds: Vec<u64> = p.pick(vec![3, 4, 6, 8, 10], vec![3, 6, 10]);
    let mut section = Section::new(format!(
        "E2 / Figure 2a — zigzag precedence, sweeping L_CD (C→D lower bound)\n\
         Eq. (1) budget: −U_CA + L_CD − U_ED + L_EB, U_CA=3, U_ED=2, L_EB=4\n\n{}",
        format_header(
            &WIDTHS,
            &["L_CD", "budget", "zz runs", "min wt", "min gap", "mean gap"],
        ),
    ));
    for l_cd in lcds {
        section = section.cell(move || {
            let mut nb = Network::builder();
            let a = nb.add_process("A");
            let b = nb.add_process("B");
            let c = nb.add_process("C");
            let d = nb.add_process("D");
            let e = nb.add_process("E");
            nb.add_channel(c, a, 1, 3).unwrap();
            nb.add_channel(c, d, l_cd, l_cd + 2).unwrap();
            nb.add_channel(e, d, 1, 2).unwrap();
            nb.add_channel(e, b, 4, 7).unwrap();
            let ctx = nb.build().unwrap();
            let budget = -3i64 + l_cd as i64 - 2 + 4;

            let mut weights = Vec::new();
            let mut gaps = Vec::new();
            for seed in 0..seeds {
                let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(90)));
                sim.external(Time::new(2), c, "go_c");
                sim.external(Time::new(6 + l_cd), e, "go_e");
                let run = sim
                    .run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
                    .unwrap();
                let sigma_c = run.external_receipt_node(c, "go_c").unwrap();
                let sigma_e = run.external_receipt_node(e, "go_e").unwrap();
                let lower = TwoLeggedFork::new(
                    GeneralNode::basic(sigma_c),
                    NetPath::new(vec![c, d]).unwrap(),
                    NetPath::new(vec![c, a]).unwrap(),
                )
                .unwrap();
                let upper = TwoLeggedFork::new(
                    GeneralNode::basic(sigma_e),
                    NetPath::new(vec![e, b]).unwrap(),
                    NetPath::new(vec![e, d]).unwrap(),
                )
                .unwrap();
                let z = ZigzagPattern::new(vec![lower, upper]).unwrap();
                let Ok(report) = z.validate(&run) else {
                    continue; // D heard E first: no zigzag in this run
                };
                weights.push(report.weight);
                gaps.push(report.gap);
                assert!(report.gap >= report.weight, "Theorem 1 violated");
                assert!(report.gap > budget, "Eq. (1) violated");
            }
            assert!(min(&weights) > budget, "separation tick missing");
            CellOutput::text(format_row(
                &WIDTHS,
                &[
                    l_cd.to_string(),
                    budget.to_string(),
                    format!("{}/{seeds}", weights.len()),
                    min(&weights).to_string(),
                    min(&gaps).to_string(),
                    format!("{:.1}", mean(&gaps)),
                ],
            ))
        });
    }
    Experiment::new("fig2_zigzag").section(section.footer(|_| {
        "\nSeries shape: min gap > budget in every zigzag run; the realized\n\
         weight is budget + S(Z) with S(Z) >= 1 (the separation at D).\n"
            .into()
    }))
}
