//! E4 (Figure 3 / Theorem 1): zigzag sufficiency at scale. On random
//! strongly-connected networks, enumerates GB-path-derived zigzags between
//! node pairs and reports the distribution of `gap − weight` slack: the
//! minimum must be ≥ 0 in every run (Theorem 1), with 0 achieved (tight).

use zigzag_bcm::{NodeId, ProcessId};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::extract::zigzag_from_gb_path;
use zigzag_core::CoreError;

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, kicked_run, scaled_context};

const WIDTHS: [usize; 6] = [6, 9, 10, 10, 10, 11];

/// Builds the E4 family: one cell per network size.
pub fn experiment(p: Profile) -> Experiment {
    let seeds = p.pick(12u64, 6);
    let ns: Vec<usize> = p.pick(vec![3, 5, 8, 12], vec![3, 5]);
    let mut section = Section::new(format!(
        "E4 / Theorem 1 — zigzag soundness on random networks\n\n{}",
        format_header(
            &WIDTHS,
            &[
                "procs",
                "runs",
                "patterns",
                "min slack",
                "max slack",
                "violations",
            ],
        ),
    ));
    for n in ns {
        section = section.cell(move || {
            let mut patterns = 0u64;
            let mut min_slack = i64::MAX;
            let mut max_slack = i64::MIN;
            let mut violations = 0u64;
            let mut runs = 0u64;
            for seed in 0..seeds {
                let ctx = scaled_context(n, 0.35, seed);
                let run = kicked_run(&ctx, ProcessId::new(0), 2, 45, seed);
                runs += 1;
                let gb = BoundsGraph::of_run(&run);
                let nodes: Vec<NodeId> = run
                    .nodes()
                    .map(|r| r.id())
                    .filter(|k| !k.is_initial())
                    .take(10)
                    .collect();
                for &x in &nodes {
                    for &y in &nodes {
                        let Some((w, edges)) = gb.longest_path(x, y).unwrap() else {
                            continue;
                        };
                        let z = zigzag_from_gb_path(&gb, x, &edges).unwrap();
                        match z.validate(&run) {
                            Ok(report) => {
                                patterns += 1;
                                let slack = report.gap - report.weight;
                                min_slack = min_slack.min(slack);
                                max_slack = max_slack.max(slack);
                                if slack < 0 || report.weight != w {
                                    violations += 1;
                                }
                            }
                            Err(CoreError::HorizonTooSmall { .. }) => {}
                            Err(e) => panic!("extraction failed: {e}"),
                        }
                    }
                }
            }
            assert_eq!(violations, 0, "Theorem 1 violated at n={n}");
            assert_eq!(
                min_slack, 0,
                "longest-path certificates should be tight somewhere"
            );
            CellOutput::text(format_row(
                &WIDTHS,
                &[
                    n.to_string(),
                    runs.to_string(),
                    patterns.to_string(),
                    min_slack.to_string(),
                    max_slack.to_string(),
                    violations.to_string(),
                ],
            ))
        });
    }
    Experiment::new("thm1_soundness").section(section.footer(|_| {
        "\nSeries shape: zero violations at every scale; minimum slack 0\n\
         (some pair always realizes its certificate exactly).\n"
            .into()
    }))
}
