//! E7 (Figure 8 / §5.1): the extended bounds graph captures knowledge the
//! local graph misses. For random observers, counts the node pairs whose
//! best precedence certificate in `GE(r, σ)` strictly beats the best path
//! in the induced local graph `GB(r, σ)` — i.e. knowledge derived from
//! *unseen deliveries* and frontier reasoning.

use zigzag_bcm::{NodeId, ProcessId};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::extended_graph::{ExtVertex, ExtendedGraph};

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, kicked_run, scaled_context};

const WIDTHS: [usize; 5] = [6, 9, 11, 12, 12];

/// Builds the E7 family: one cell per network size.
pub fn experiment(p: Profile) -> Experiment {
    let seeds = p.pick(10u64, 5);
    let ns: Vec<usize> = p.pick(vec![3, 5, 8], vec![3, 5]);
    let mut section = Section::new(format!(
        "E7 / Figure 8 — GE(r, σ) vs the induced local graph GB(r, σ)\n\n{}",
        format_header(
            &WIDTHS,
            &["procs", "pairs", "GB == GE", "GE strictly+", "GE-only"],
        ),
    ));
    for n in ns {
        section = section.cell(move || {
            let mut equal = 0u64;
            let mut stronger = 0u64;
            let mut ge_only = 0u64;
            let mut pairs = 0u64;
            for seed in 0..seeds {
                let ctx = scaled_context(n, 0.4, seed + 500);
                let run = kicked_run(&ctx, ProcessId::new(0), 2, 40, seed);
                // Observers at several depths: early observers have small
                // pasts and many in-flight messages — where GE shines.
                let mut by_time: Vec<NodeId> = run
                    .nodes()
                    .map(|r| r.id())
                    .filter(|k| !k.is_initial())
                    .collect();
                by_time.sort_by_key(|k| run.time(*k));
                let picks: Vec<NodeId> = [1, 2, 4]
                    .iter()
                    .filter_map(|&q| by_time.get(by_time.len() * q / 8).copied())
                    .collect();
                for sigma in picks {
                    let past = run.past(sigma);
                    let local = BoundsGraph::local(&run, &past);
                    let ge = ExtendedGraph::new(&run, sigma);
                    let nodes: Vec<NodeId> =
                        past.iter().filter(|k| !k.is_initial()).take(8).collect();
                    for &x in &nodes {
                        let lp_local = local.longest_from(x).unwrap();
                        let lp_ge = ge.longest_from(ExtVertex::Node(x)).unwrap();
                        for &y in &nodes {
                            if x == y {
                                continue;
                            }
                            pairs += 1;
                            let wl = local.graph().index_of(&y).and_then(|i| lp_local.weight(i));
                            let wg = ge
                                .index_of(ExtVertex::Node(y))
                                .and_then(|i| lp_ge.weight(i));
                            match (wl, wg) {
                                (Some(l), Some(g)) if g > l => stronger += 1,
                                (Some(l), Some(g)) => {
                                    assert!(g == l, "GE weaker than its subgraph?!");
                                    equal += 1;
                                }
                                (None, Some(_)) => ge_only += 1,
                                (Some(_), None) => panic!("GE lost a local path"),
                                (None, None) => {}
                            }
                        }
                    }
                }
            }
            assert!(
                stronger + ge_only > 0,
                "the extension never mattered at n={n} — suspicious"
            );
            CellOutput::text(format_row(
                &WIDTHS,
                &[
                    n.to_string(),
                    pairs.to_string(),
                    equal.to_string(),
                    stronger.to_string(),
                    ge_only.to_string(),
                ],
            ))
        });
    }
    Experiment::new("fig8_extended").section(section.footer(|_| {
        "\nSeries shape: GE never loses information (no 'GB-only' column can\n\
         exist) and regularly adds strictly stronger certificates — the\n\
         §5.1 '1 − U_ij from an unseen delivery' effect at scale.\n"
            .into()
    }))
}
