//! E5 (Figure 7 / Theorem 2): zigzag necessity via slow-run tightness. For
//! random networks, builds the slow run of a late node σ and checks that
//! every node of the σ-precedence set realizes its longest-path bound
//! exactly — the construction at the heart of the Theorem 2 proof — and
//! that the slow run is a certified-legal member of `R(P, γ)`.

use zigzag_bcm::validate::{validate_run, Strictness};
use zigzag_bcm::ProcessId;
use zigzag_core::construct::slow_run;
use zigzag_core::extract::zigzag_for_pair;

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{format_header, format_row, kicked_run, scaled_context};

const WIDTHS: [usize; 6] = [6, 9, 11, 11, 12, 12];

/// Builds the E5 family: one cell per network size.
pub fn experiment(p: Profile) -> Experiment {
    let seeds = p.pick(10u64, 4);
    let ns: Vec<usize> = p.pick(vec![3, 5, 8], vec![3, 5]);
    let mut section = Section::new(format!(
        "E5 / Theorem 2 — slow-run tightness on random networks\n\n{}",
        format_header(
            &WIDTHS,
            &[
                "procs",
                "runs",
                "kept nodes",
                "tight @",
                "GB matches",
                "legal runs",
            ],
        ),
    ));
    for n in ns {
        section = section.cell(move || {
            let mut kept_total = 0usize;
            let mut tight = 0usize;
            let mut gb_match = 0usize;
            let mut gb_checked = 0usize;
            let mut legal = 0usize;
            let mut runs = 0usize;
            for seed in 0..seeds {
                let ctx = scaled_context(n, 0.4, seed + 100);
                let run = kicked_run(&ctx, ProcessId::new(0), 2, 40, seed);
                let Some(sigma) = run
                    .nodes()
                    .map(|r| r.id())
                    .filter(|k| !k.is_initial())
                    .last()
                else {
                    continue;
                };
                runs += 1;
                let sr = slow_run(&run, sigma).expect("slow run constructs");
                if validate_run(&sr.run, Strictness::Strict).is_ok() {
                    legal += 1;
                }
                let t_sigma = sr.run.time(sigma).unwrap();
                for (&node, &t) in &sr.timing {
                    kept_total += 1;
                    if t_sigma.diff(t) == sr.d[&node] {
                        tight += 1;
                    }
                    // Lemma 5: the GB zigzag certificate is sound, and for
                    // interior pairs equals the frontier-tight value.
                    if let Some((w, _)) = zigzag_for_pair(&run, node, sigma).unwrap() {
                        gb_checked += 1;
                        if w <= sr.d[&node] {
                            gb_match += 1;
                        }
                    }
                }
            }
            assert_eq!(tight, kept_total, "slow run not tight at n={n}");
            assert_eq!(gb_match, gb_checked, "GB certificate unsound at n={n}");
            assert_eq!(legal, runs, "illegal slow run at n={n}");
            CellOutput::text(format_row(
                &WIDTHS,
                &[
                    n.to_string(),
                    runs.to_string(),
                    kept_total.to_string(),
                    format!("{tight}/{kept_total}"),
                    format!("{gb_match}/{gb_checked}"),
                    format!("{legal}/{runs}"),
                ],
            ))
        });
    }
    Experiment::new("thm2_tightness").section(section.footer(|_| {
        "\nSeries shape: every kept node achieves its longest-path bound\n\
         exactly, in a run the model validator certifies as legal.\n"
            .into()
    }))
}
