//! E1 (Figure 1): the simple fork. Sweeps the fork weight
//! `L_CB − U_CA` and reports, per weight, the worst observed gap
//! `t_b − t_a` over random schedules, the knowledge threshold at `B`, and
//! whether the optimal protocol acts at `x = weight`.
//!
//! Expected shape (paper §1): the gap never falls below the weight; the
//! bound is achieved (tight); `B` coordinates with **zero** A↔B
//! communication exactly for `x <= L_CB − U_CA`.

use zigzag_bcm::Time;
use zigzag_coord::{
    Battery, CoordKind, OptimalStrategy, Scenario, StrategyFactory, TimedCoordination,
};
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::GeneralNode;

use super::Profile;
use crate::harness::{CellOutput, Experiment, Section};
use crate::{fig1_context, format_header, format_row, kicked_run, mean, min};

const WIDTHS: [usize; 6] = [6, 8, 9, 9, 10, 12];

/// Builds the E1 family: one cell per `L_CB` setting.
pub fn experiment(p: Profile) -> Experiment {
    let seeds = p.pick(60u64, 10);
    let proto_seeds = p.pick(20u64, 6);
    let lbs: Vec<u64> = p.pick(vec![3, 5, 7, 9, 11, 13], vec![3, 9, 13]);
    let mut section = Section::new(format!(
        "E1 / Figure 1 — simple-fork coordination, C→A [2,5], C→B [lb, lb+3]\n\
         fork weight w = L_CB − U_CA; B must guarantee a --w--> b\n\n{}",
        format_header(
            &WIDTHS,
            &[
                "L_CB",
                "w",
                "min gap",
                "mean gap",
                "max-x at B",
                "acts at x=w"
            ],
        ),
    ));
    for lb in lbs {
        section = section.cell(move || {
            let (ctx, c, a, b) = fig1_context(2, 5, lb, lb + 3);
            let w = lb as i64 - 5;
            let mut gaps = Vec::new();
            let mut max_x_seen = None;
            for seed in 0..seeds {
                let run = kicked_run(&ctx, c, 3, 60, seed);
                let sigma_c = run.external_receipt_node(c, "kick").unwrap();
                let theta_a = GeneralNode::chain(sigma_c, &[a]).unwrap();
                let theta_b = GeneralNode::chain(sigma_c, &[b]).unwrap();
                let ta = theta_a.time_in(&run).unwrap();
                let tb = theta_b.time_in(&run).unwrap();
                gaps.push(tb.diff(ta));
                if seed == 0 {
                    let sigma_b = theta_b.resolve(&run).unwrap();
                    let engine = KnowledgeEngine::new(&run, sigma_b).unwrap();
                    max_x_seen = engine.max_x(&theta_a, &theta_b).unwrap();
                }
            }
            // Protocol check at x = w, as a scenario battery.
            let spec = TimedCoordination::new(CoordKind::Late { x: w }, a, b, c);
            let scenario = Scenario::new(spec, ctx, Time::new(3), Time::new(80)).unwrap();
            let optimal: StrategyFactory<'_> = &|| Box::new(OptimalStrategy::new());
            let out = Battery {
                scenario,
                strategy: optimal,
                seeds: 0..proto_seeds,
            }
            .run_serial()
            .unwrap();
            assert_eq!(out.violations, 0, "soundness violated");
            assert!(min(&gaps) >= w, "fork guarantee violated at lb={lb}");
            assert_eq!(max_x_seen, Some(w), "knowledge threshold off at lb={lb}");
            CellOutput::text(format_row(
                &WIDTHS,
                &[
                    lb.to_string(),
                    w.to_string(),
                    min(&gaps).to_string(),
                    format!("{:.1}", mean(&gaps)),
                    max_x_seen.map_or("—".into(), |m| m.to_string()),
                    format!("{}/{proto_seeds}", out.acted),
                ],
            ))
        });
    }
    Experiment::new("fig1_fork").section(
        section.footer(|_| {
            "\nSeries shape: min gap == w (tight) and B acts at exactly x = w.\n".into()
        }),
    )
}
