//! The experiment families behind the `exp_*` binaries, as library code.
//!
//! Each module builds one [`Experiment`] — the declarative form of one
//! binary's scenario family: a parameter sweep whose points are
//! independent [`crate::harness::Section`] cells, fanned across threads
//! by the [`crate::harness::ExperimentHarness`]. The binaries are
//! one-line wrappers over [`Profile::Full`]; the golden-snapshot and
//! determinism suites (and the `family` benchmark) drive the same code at
//! [`Profile::Smoke`].

pub mod ablation;
pub mod fig1_fork;
pub mod fig2_zigzag;
pub mod fig3_visible;
pub mod fig8_extended;
pub mod online;
pub mod protocol_compare;
pub mod serve;
pub mod thm1_soundness;
pub mod thm2_tightness;
pub mod thm3_kop;
pub mod thm4_knowledge;

use crate::harness::Experiment;

/// Which configuration of an experiment family to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The full configuration the `exp_*` binaries run. May include
    /// wall-clock measurements (the ablation's timing columns), so its
    /// report text is *not* byte-deterministic.
    Full,
    /// A small fixed-seed configuration for the golden-snapshot,
    /// determinism and smoke tiers: fewer parameter points and seeds, and
    /// **no wall-clock text** — the rendered report is byte-deterministic
    /// across machines, runs, and worker counts.
    Smoke,
}

impl Profile {
    /// Whether this is the smoke configuration.
    pub fn is_smoke(self) -> bool {
        matches!(self, Profile::Smoke)
    }

    /// Picks the profile-appropriate value.
    pub fn pick<T>(self, full: T, smoke: T) -> T {
        match self {
            Profile::Full => full,
            Profile::Smoke => smoke,
        }
    }
}

/// Every experiment family at the given profile, in binary order.
pub fn all(p: Profile) -> Vec<Experiment> {
    vec![
        fig1_fork::experiment(p),
        fig2_zigzag::experiment(p),
        fig3_visible::experiment(p),
        fig8_extended::experiment(p),
        thm1_soundness::experiment(p),
        thm2_tightness::experiment(p),
        thm3_kop::experiment(p),
        thm4_knowledge::experiment(p),
        protocol_compare::experiment(p),
        ablation::experiment(p),
        online::experiment(p),
        serve::experiment(p),
    ]
}
