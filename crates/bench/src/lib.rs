//! # zigzag-bench — experiment harness for the reproduction
//!
//! Shared fixtures and reporting helpers used by the experiment binaries
//! (`src/bin/exp_*.rs`, one per paper figure/claim — see DESIGN.md §4 and
//! EXPERIMENTS.md) and the Criterion benchmarks (`benches/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

use std::sync::Arc;

use zigzag_bcm::protocols::Ffip;
use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::{Context, Network, ProcessId, Run, SimConfig, Simulator, Time};

/// The Figure 1 context with parametric bounds: `C → A [la, ua]`,
/// `C → B [lb, ub]`. Returns `(ctx, c, a, b)`; the context is shared so
/// seed batteries don't copy the network per run.
pub fn fig1_context(
    la: u64,
    ua: u64,
    lb: u64,
    ub: u64,
) -> (Arc<Context>, ProcessId, ProcessId, ProcessId) {
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, la, ua).expect("valid bounds");
    nb.add_channel(c, b, lb, ub).expect("valid bounds");
    (nb.build().expect("non-empty").into(), c, a, b)
}

/// The Figure 2 / 2b context with the paper's bound pattern. Returns
/// `(ctx, [a, b, c, d, e])`; `with_report` adds the `D → B` channel that
/// makes the zigzag visible at `B`.
pub fn fig2_context(with_report: bool) -> (Arc<Context>, [ProcessId; 5]) {
    let mut nb = Network::builder();
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    let c = nb.add_process("C");
    let d = nb.add_process("D");
    let e = nb.add_process("E");
    nb.add_channel(c, a, 1, 3).expect("valid"); // U_CA = 3
    nb.add_channel(c, d, 6, 8).expect("valid"); // L_CD = 6
    nb.add_channel(e, d, 1, 2).expect("valid"); // U_ED = 2
    nb.add_channel(e, b, 4, 7).expect("valid"); // L_EB = 4
    if with_report {
        nb.add_channel(d, b, 1, 5).expect("valid");
    }
    (nb.build().expect("non-empty").into(), [a, b, c, d, e])
}

/// Simulates a single-trigger workload under a seeded random schedule.
/// The context is shared with the produced run (no deep copy).
pub fn kicked_run(ctx: &Arc<Context>, kick_to: ProcessId, at: u64, horizon: u64, seed: u64) -> Run {
    let mut sim = Simulator::new(Arc::clone(ctx), SimConfig::with_horizon(Time::new(horizon)));
    sim.external(Time::new(at), kick_to, "kick");
    sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
        .expect("well-formed workload")
}

/// A strongly connected random context of `n` processes (ring plus random
/// chords), for scaling sweeps.
pub fn scaled_context(n: usize, density: f64, seed: u64) -> Arc<Context> {
    zigzag_bcm::topology::random(n, density, 1, 6, seed)
        .expect("valid topology parameters")
        .into()
}

/// Formats a Markdown-style table row (trailing newline included),
/// padding each cell to its column.
pub fn format_row(widths: &[usize], cells: &[String]) -> String {
    let line: Vec<String> = widths
        .iter()
        .zip(cells)
        .map(|(w, c)| format!("{c:>w$}"))
        .collect();
    format!("| {} |\n", line.join(" | "))
}

/// Formats a table header plus separator (two lines, newlines included).
pub fn format_header(widths: &[usize], names: &[&str]) -> String {
    let mut out = format_row(
        widths,
        &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let line: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", line.join("-|-")));
    out
}

/// Prints a Markdown-style table row, padding each cell to its column.
pub fn print_row(widths: &[usize], cells: &[String]) {
    print!("{}", format_row(widths, cells));
}

/// Prints a table header plus separator.
pub fn print_header(widths: &[usize], names: &[&str]) {
    print!("{}", format_header(widths, names));
}

// Sample summaries shared with the simulation layer's run statistics.
pub use zigzag_bcm::stats::{mean, min};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_materialize() {
        let (ctx, c, _a, _b) = fig1_context(2, 5, 9, 12);
        let run = kicked_run(&ctx, c, 3, 30, 0);
        assert!(run.node_count() > 3);
        let (ctx2, procs) = fig2_context(true);
        assert_eq!(ctx2.network().len(), 5);
        assert!(ctx2.network().has_channel(procs[3], procs[1]));
        let ctx3 = scaled_context(6, 0.5, 1);
        assert_eq!(ctx3.network().len(), 6);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1, 2, 3]), 2.0);
        assert!(mean(&[]).is_nan());
        assert_eq!(min(&[3, 1, 2]), 1);
        assert_eq!(min(&[]), i64::MAX);
    }
}
