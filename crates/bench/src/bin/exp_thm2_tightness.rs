//! E5 (Figure 7 / Theorem 2): slow-run tightness — see
//! [`zigzag_bench::experiments::thm2_tightness`].

use zigzag_bench::experiments::{thm2_tightness, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(thm2_tightness::experiment(Profile::Full));
}
