//! E2 (Figure 2a + Equation 1): zigzag-based precedence — see
//! [`zigzag_bench::experiments::fig2_zigzag`].

use zigzag_bench::experiments::{fig2_zigzag, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(fig2_zigzag::experiment(Profile::Full));
}
