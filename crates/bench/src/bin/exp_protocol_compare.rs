//! E9 (§1 headline): how much earlier can B act? Sweeps the separation
//! `x` on the Figure 1 and Figure 2b workloads and compares the optimal
//! zigzag protocol against the simple-fork and asynchronous baselines:
//! action rate and mean action time. Seeds are swept in parallel.
//!
//! Expected shape: zigzag ≡ fork on fork-only topologies (Figure 1);
//! zigzag acts strictly beyond the fork's ceiling on Figure 2b; the async
//! baseline, when it can act at all, acts latest.

use zigzag_bcm::par::par_map;
use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::Time;
use zigzag_bench::{fig1_context, fig2_context, print_header, print_row};
use zigzag_coord::{
    AsyncChainStrategy, BStrategy, CoordKind, OptimalStrategy, Scenario, SimpleForkStrategy,
    TimedCoordination,
};

const SEEDS: u64 = 40;

fn sweep(scenario: &Scenario, make: &(dyn Fn() -> Box<dyn BStrategy> + Sync)) -> (u32, f64, u32) {
    let seeds: Vec<u64> = (0..SEEDS).collect();
    let outcomes = par_map(&seeds, |&seed| {
        let mut strategy = make();
        let (_, v) = scenario
            .run_verified(strategy.as_mut(), &mut RandomScheduler::seeded(seed))
            .expect("scenario runs");
        (v.b_time, !v.ok as u32)
    });
    let acted = outcomes.iter().filter(|(t, _)| t.is_some()).count() as u32;
    let time_sum: u64 = outcomes
        .iter()
        .filter_map(|(t, _)| t.map(|t| t.ticks()))
        .sum();
    let violations: u32 = outcomes.iter().map(|(_, v)| v).sum();
    let mean = if acted > 0 {
        time_sum as f64 / acted as f64
    } else {
        f64::NAN
    };
    (acted, mean, violations)
}

fn report(title: &str, scenarios: &[(i64, Scenario)]) {
    println!("{title}");
    let widths = [4, 20, 20, 20];
    print_header(
        &widths,
        &["x", "optimal-zigzag", "simple-fork", "async-chain"],
    );
    type Factory = Box<dyn Fn() -> Box<dyn BStrategy> + Sync>;
    let strategies: Vec<(&str, Factory)> = vec![
        ("optimal", Box::new(|| Box::new(OptimalStrategy::new()))),
        ("fork", Box::new(|| Box::new(SimpleForkStrategy::default()))),
        ("async", Box::new(|| Box::new(AsyncChainStrategy::new()))),
    ];
    for (x, scenario) in scenarios {
        let mut cells = vec![x.to_string()];
        for (_, make) in &strategies {
            let (acted, mean, violations) = sweep(scenario, make.as_ref());
            assert_eq!(violations, 0, "baseline violated its spec");
            cells.push(if acted == 0 {
                "abstains".into()
            } else {
                format!("{acted}/{SEEDS} @ t̄={mean:.1}")
            });
        }
        print_row(&widths, &cells);
    }
    println!();
}

fn main() {
    println!(
        "E9 — earliest safe action: optimal vs baselines ({SEEDS} seeds, {} threads)\n",
        zigzag_bcm::par::thread_count()
    );

    // Figure 1 workload (fork weight 4; A→B chain for the async baseline).
    let fig1: Vec<(i64, Scenario)> = [-2i64, 0, 2, 4, 5]
        .into_iter()
        .map(|x| {
            let (ctx, c, a, b) = {
                let mut nb = zigzag_bcm::Network::builder();
                let c = nb.add_process("C");
                let a = nb.add_process("A");
                let b = nb.add_process("B");
                nb.add_channel(c, a, 2, 5).unwrap();
                nb.add_channel(c, b, 9, 12).unwrap();
                nb.add_channel(a, b, 1, 4).unwrap();
                (nb.build().unwrap(), c, a, b)
            };
            let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
            (
                x,
                Scenario::new(spec, ctx, Time::new(3), Time::new(90)).unwrap(),
            )
        })
        .collect();
    report("Figure 1 topology — Late⟨a --x--> b⟩:", &fig1);

    // Figure 2b workload (fork ceiling 4, zigzag ceiling 6).
    let fig2b: Vec<(i64, Scenario)> = [2i64, 4, 5, 6, 7]
        .into_iter()
        .map(|x| {
            let (ctx, [a, b, c, _d, e]) = fig2_context(true);
            let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
            let sc = Scenario::new(spec, ctx, Time::new(2), Time::new(130))
                .unwrap()
                .with_external(Time::new(25), e, "kick_e");
            (x, sc)
        })
        .collect();
    report(
        "Figure 2b topology — Late⟨a --x--> b⟩ (fork ceiling 4, zigzag 6):",
        &fig2b,
    );

    // Early coordination (Figure 1 with reversed bound asymmetry).
    let early: Vec<(i64, Scenario)> = [2i64, 6, 8, 9]
        .into_iter()
        .map(|x| {
            let (ctx, c, a, b) = fig1_context(10, 12, 1, 2);
            let spec = TimedCoordination::new(CoordKind::Early { x }, a, b, c);
            (
                x,
                Scenario::new(spec, ctx, Time::new(2), Time::new(90)).unwrap(),
            )
        })
        .collect();
    report(
        "Early⟨b --x--> a⟩ — C→A [10,12], C→B [1,2] (threshold 8):",
        &early,
    );

    // Window coordination (two-sided): the fig-1 knowledge band is
    // [L_CB − U_CA, U_CB − L_CA] = [4, 10]; only windows covering it work.
    let window: Vec<(i64, Scenario)> = [(4i64, 10i64), (0, 20), (5, 20), (4, 9)]
        .into_iter()
        .map(|(lo, hi)| {
            let (ctx, c, a, b) = fig1_context(2, 5, 9, 12);
            let spec = TimedCoordination::new(
                CoordKind::Window {
                    after: lo,
                    within: hi,
                },
                a,
                b,
                c,
            );
            (
                lo * 100 + hi, // display key
                Scenario::new(spec, ctx, Time::new(3), Time::new(90)).unwrap(),
            )
        })
        .collect();
    report(
        "Window⟨a --[lo,hi]--> b⟩ — rows keyed lo·100+hi (band [4,10]):",
        &window,
    );

    println!("Crossovers: fork == zigzag where single forks suffice; zigzag alone");
    println!("covers the (fork ceiling, zigzag ceiling] band; async acts latest and");
    println!("only for Late x <= 0.");
}
