//! E9 (§1 headline): optimal vs baseline strategies — see
//! [`zigzag_bench::experiments::protocol_compare`].

use zigzag_bench::experiments::{protocol_compare, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(protocol_compare::experiment(Profile::Full));
}
