//! E8 (Figures 4–5 / Theorem 4): the knowledge characterization — see
//! [`zigzag_bench::experiments::thm4_knowledge`].

use zigzag_bench::experiments::{thm4_knowledge, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(thm4_knowledge::experiment(Profile::Full));
}
