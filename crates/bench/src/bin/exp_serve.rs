//! Serving tier: sharded wire dispatch + warm exclude-mode coordination
//! — see [`zigzag_bench::experiments::serve`].

use zigzag_bench::experiments::{serve, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(serve::experiment(Profile::Full));
}
