//! `bench_report` — renders every committed `BENCH_pr*.json` into one
//! benchmark-trajectory table.
//!
//! Each PR commits the medians its bench run recorded (the criterion
//! shim's `CRITERION_JSON` output: a JSON array of
//! `{"name", "ns_per_iter", "samples"}` objects). This binary
//! schema-checks every file — unknown or missing fields, wrong types and
//! malformed JSON are hard errors, so a drifting writer cannot silently
//! produce an unreadable trajectory — and prints one merged table, file
//! by file, row order preserved. `net/*` rows additionally get derived
//! per-frame µs and queries/sec columns (one iteration of the B10 net
//! bench serves 128 two-query frames), and `store/append-*` rows get
//! per-event µs and events/sec (one iteration of the B11 store bench
//! appends 64 events).
//!
//! ```text
//! bench_report [FILE...]      # default: ./BENCH_pr*.json, sorted
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

/// One schema-checked benchmark record.
struct Record {
    name: String,
    ns_per_iter: f64,
    samples: u64,
}

/// A minimal JSON cursor for exactly the shim's output shape: an array
/// of flat objects with string keys and string/number values. Anything
/// else is a schema error (by design — see the module docs).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                want as char,
                self.pos,
                other.map(|&b| b as char)
            )),
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// A JSON string without escapes — bench names never need them; a
    /// backslash is a schema error rather than a silent misread.
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => break,
                Some(b'\\') => return Err(format!("escape in string at byte {}", self.pos)),
                Some(_) => self.pos += 1,
                None => return Err("unterminated string".into()),
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("invalid utf-8 in string: {e}"))?
            .to_string();
        self.pos += 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number bytes");
        text.parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Parses and schema-checks one `BENCH_pr*.json` document.
fn parse(text: &str) -> Result<Vec<Record>, String> {
    let mut c = Cursor::new(text);
    let mut records = Vec::new();
    c.eat(b'[')?;
    if c.peek() == Some(b']') {
        c.pos += 1;
    } else {
        loop {
            c.eat(b'{')?;
            let (mut name, mut ns, mut samples) = (None, None, None);
            loop {
                let key = c.string()?;
                c.eat(b':')?;
                match key.as_str() {
                    "name" => name = Some(c.string()?),
                    "ns_per_iter" => ns = Some(c.number()?),
                    "samples" => {
                        let v = c.number()?;
                        if v.fract() != 0.0 || v < 0.0 {
                            return Err(format!("samples must be a non-negative integer, got {v}"));
                        }
                        samples = Some(v as u64);
                    }
                    other => return Err(format!("unknown field {other:?}")),
                }
                match c.peek() {
                    Some(b',') => c.pos += 1,
                    Some(b'}') => {
                        c.pos += 1;
                        break;
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
            records.push(Record {
                name: name.ok_or("record missing \"name\"")?,
                ns_per_iter: ns.ok_or("record missing \"ns_per_iter\"")?,
                samples: samples.ok_or("record missing \"samples\"")?,
            });
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b']') => {
                    c.pos += 1;
                    break;
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(format!("trailing content at byte {}", c.pos));
    }
    Ok(records)
}

/// One `net/*` bench iteration serves this many envelope frames — the
/// B10 workload in `crates/bench/benches/net.rs` builds exactly 128
/// (asserted there, since this report derives per-frame cost from it).
const NET_FRAMES_PER_ITER: f64 = 128.0;
/// Each of those frames is a two-query `QueryBatch`.
const NET_QUERIES_PER_FRAME: f64 = 2.0;
/// One `store/append-*` bench iteration appends this many events — the
/// B11 workload in `crates/bench/benches/store.rs` feeds exactly 64
/// (`STORE_EVENTS_PER_ITER` there).
const STORE_EVENTS_PER_ITER: f64 = 64.0;

/// The derived throughput columns: per-unit µs and units/sec for the
/// rows whose iteration is a known batch (`net/*` frames,
/// `store/append-*` events). Other rows measure heterogeneous units
/// (whole passes, single dispatches), so they get em-dashes instead of
/// a misleading number.
fn derived(name: &str, ns_per_iter: f64) -> (String, String) {
    if ns_per_iter <= 0.0 {
        return ("—".to_string(), "—".to_string());
    }
    let (units, per_unit) = if name.starts_with("net/") {
        (NET_FRAMES_PER_ITER, NET_QUERIES_PER_FRAME)
    } else if name.starts_with("store/append-") {
        (STORE_EVENTS_PER_ITER, 1.0)
    } else {
        return ("—".to_string(), "—".to_string());
    };
    let us_per_unit = ns_per_iter / units / 1_000.0;
    let per_sec = units * per_unit / (ns_per_iter * 1e-9);
    (
        format!("{us_per_unit:.2}"),
        group_ns(per_sec), // same thousands-grouping, unit-free
    )
}

/// `12345678.9 ns` → `"12,345,679"` (rounded, thousands-grouped).
fn group_ns(ns: f64) -> String {
    let whole = ns.round().max(0.0) as u64;
    let digits = whole.to_string();
    let mut out = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

fn default_files() -> std::io::Result<Vec<String>> {
    let mut files: Vec<String> = std::fs::read_dir(".")?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_pr") && n.ends_with(".json"))
        .collect();
    files.sort();
    Ok(files)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files = if args.is_empty() {
        match default_files() {
            Ok(files) => files,
            Err(e) => {
                eprintln!("bench_report: cannot scan working directory: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args
    };
    if files.is_empty() {
        eprintln!("bench_report: no BENCH_pr*.json files found");
        return ExitCode::FAILURE;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "| file | benchmark | ns/iter | samples | vs prior | µs/unit | units/s |"
    );
    let _ = writeln!(
        out,
        "|------|-----------|--------:|--------:|---------:|--------:|--------:|"
    );
    let mut rows = 0usize;
    // Rows re-recorded across PR files (e.g. the serve loop re-measured
    // after the layout rewrite) get a speedup column against the latest
    // earlier file containing the same row name.
    let mut prior: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_report: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let records = match parse(&text) {
            Ok(records) => records,
            Err(e) => {
                eprintln!("bench_report: {file}: schema error: {e}");
                return ExitCode::FAILURE;
            }
        };
        for r in &records {
            let vs = match prior.get(&r.name) {
                Some(&old) if r.ns_per_iter > 0.0 => format!("{:.2}x", old / r.ns_per_iter),
                _ => "—".to_string(),
            };
            let (us_frame, qps) = derived(&r.name, r.ns_per_iter);
            let _ = writeln!(
                out,
                "| {file} | {} | {} | {} | {vs} | {us_frame} | {qps} |",
                r.name,
                group_ns(r.ns_per_iter),
                r.samples
            );
            prior.insert(r.name.clone(), r.ns_per_iter);
        }
        rows += records.len();
    }
    print!("{out}");
    eprintln!("bench_report: {rows} rows from {} files", files.len());
    ExitCode::SUCCESS
}
