//! E7 (Figure 8 / §5.1): the extended bounds graph vs the local graph —
//! see [`zigzag_bench::experiments::fig8_extended`].

use zigzag_bench::experiments::{fig8_extended, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(fig8_extended::experiment(Profile::Full));
}
