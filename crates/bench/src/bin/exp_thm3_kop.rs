//! E10 (Theorem 3): knowledge of preconditions. Adversarial schedule
//! fuzzing over random networks and roles: sound strategies never violate
//! a spec and never act without a message chain from the trigger node;
//! the reckless control is caught by the verifier.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zigzag_bcm::scheduler::{EagerScheduler, LazyScheduler, RandomScheduler};
use zigzag_bcm::{ProcessId, Time};
use zigzag_bench::{print_header, print_row, scaled_context};
use zigzag_coord::{
    AsyncChainStrategy, BStrategy, CoordKind, OptimalStrategy, RecklessStrategy, Scenario,
    SimpleForkStrategy, TimedCoordination,
};

fn main() {
    println!("E10 / Theorem 3 — knowledge-of-preconditions fuzz\n");
    let widths = [15, 8, 8, 12, 12];
    print_header(
        &widths,
        &["strategy", "runs", "acted", "blind acts", "violations"],
    );
    let mut rng = StdRng::seed_from_u64(2017);
    let mut configs = Vec::new();
    for _ in 0..40 {
        let n = rng.gen_range(3..=6);
        let seed = rng.gen::<u64>();
        let x = rng.gen_range(-3i64..6);
        let late = rng.gen_bool(0.5);
        configs.push((n, seed, x, late));
    }

    type Factory = Box<dyn Fn() -> Box<dyn BStrategy>>;
    let strategies: Vec<(Factory, bool)> = vec![
        (Box::new(|| Box::new(OptimalStrategy::new())), true),
        (Box::new(|| Box::new(SimpleForkStrategy::default())), true),
        (Box::new(|| Box::new(AsyncChainStrategy::new())), true),
        (Box::new(|| Box::new(RecklessStrategy)), false),
    ];
    for (make, sound) in &strategies {
        let mut runs = 0u32;
        let mut acted = 0u32;
        let mut blind = 0u32;
        let mut violations = 0u32;
        let mut name = String::new();
        for &(n, seed, x, late) in &configs {
            let ctx = scaled_context(n, 0.35, seed);
            let c = ProcessId::new(0);
            let a = ctx.network().out_neighbors(c)[0];
            let b = ProcessId::new((n - 1) as u32);
            let kind = if late {
                CoordKind::Late { x }
            } else {
                CoordKind::Early { x }
            };
            let spec = TimedCoordination::new(kind, a, b, c);
            let Ok(sc) = Scenario::new(spec, ctx, Time::new(2), Time::new(60)) else {
                continue;
            };
            for sched in 0..3u8 {
                let mut strategy = make();
                name = strategy.name().to_string();
                let result = match sched {
                    0 => sc.run_verified(strategy.as_mut(), &mut RandomScheduler::seeded(seed)),
                    1 => sc.run_verified(strategy.as_mut(), &mut EagerScheduler),
                    _ => sc.run_verified(strategy.as_mut(), &mut LazyScheduler),
                };
                let Ok((_, v)) = result else { continue };
                runs += 1;
                violations += !v.ok as u32;
                if v.b_node.is_some() {
                    acted += 1;
                    blind += !v.b_heard_go as u32;
                }
            }
        }
        print_row(
            &widths,
            &[
                name,
                runs.to_string(),
                acted.to_string(),
                blind.to_string(),
                violations.to_string(),
            ],
        );
        if *sound {
            assert_eq!(violations, 0, "sound strategy violated a spec");
            assert_eq!(blind, 0, "sound strategy acted without hearing the trigger");
        } else {
            assert!(violations > 0, "the adversarial harness caught nothing");
        }
    }
    println!("\nSeries shape: zero violations and zero blind actions for every");
    println!("sound strategy (Theorem 3); the reckless control is caught, showing");
    println!("the harness has teeth.");
}
