//! E10 (Theorem 3): knowledge-of-preconditions fuzz — see
//! [`zigzag_bench::experiments::thm3_kop`].

use zigzag_bench::experiments::{thm3_kop, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(thm3_kop::experiment(Profile::Full));
}
