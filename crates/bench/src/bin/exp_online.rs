//! Online tier: the incremental streaming engine vs batch rebuilds — see
//! [`zigzag_bench::experiments::online`].

use zigzag_bench::experiments::{online, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(online::experiment(Profile::Full));
}
