//! E4 (Figure 3 / Theorem 1): zigzag sufficiency at scale — see
//! [`zigzag_bench::experiments::thm1_soundness`].

use zigzag_bench::experiments::{thm1_soundness, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(thm1_soundness::experiment(Profile::Full));
}
