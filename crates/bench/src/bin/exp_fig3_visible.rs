//! E3 (Figure 2b): visibility makes the zigzag usable. With the `D → B`
//! report channel `B` can *know* the Eq. (1) precedence and act; without
//! it, the same pattern exists in the run but `B` never even hears the
//! trigger. Reports, per x, how often the optimal protocol acts in each
//! configuration.
//!
//! Expected shape: identical abstention without the report; action up to
//! the zigzag threshold with it.

use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::Time;
use zigzag_bench::{fig2_context, print_header, print_row};
use zigzag_coord::{CoordKind, OptimalStrategy, Scenario, TimedCoordination};

fn main() {
    const SEEDS: u64 = 30;
    println!("E3 / Figure 2b — σ-visibility: acting requires the D→B report\n");
    let widths = [4, 18, 18];
    print_header(&widths, &["x", "with D→B report", "without report"]);
    for x in [2i64, 4, 5, 6, 7, 8] {
        let mut cells = vec![x.to_string()];
        for with_report in [true, false] {
            let (ctx, [a, b, c, _d, e]) = fig2_context(with_report);
            let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
            let scenario = Scenario::new(spec, ctx, Time::new(2), Time::new(120))
                .unwrap()
                .with_external(Time::new(25), e, "kick_e");
            let mut acted = 0u32;
            let mut violated = 0u32;
            for seed in 0..SEEDS {
                let (_, v) = scenario
                    .run_verified(
                        &mut OptimalStrategy::new(),
                        &mut RandomScheduler::seeded(seed),
                    )
                    .unwrap();
                acted += v.b_node.is_some() as u32;
                violated += !v.ok as u32;
            }
            assert_eq!(violated, 0, "optimal protocol violated the spec");
            cells.push(if acted == 0 {
                "abstains".to_string()
            } else {
                format!("acts {acted}/{SEEDS}")
            });
        }
        print_row(&widths, &cells);
    }
    println!("\nSeries shape: without the dashed report chain B cannot detect the");
    println!("pattern (Theorem 3/4) and abstains at every x; with it B acts up to");
    println!("the Eq. (1)+separation threshold (6) and abstains beyond.");
}
