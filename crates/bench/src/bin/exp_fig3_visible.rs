//! E3 (Figure 2b): visibility makes the zigzag usable — see
//! [`zigzag_bench::experiments::fig3_visible`].

use zigzag_bench::experiments::{fig3_visible, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(fig3_visible::experiment(Profile::Full));
}
