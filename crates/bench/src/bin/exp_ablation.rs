//! Ablation: certificate families and graph algorithms.
//!
//! 1. **Certificate families** — for random node pairs, the best
//!    single-fork certificate (Figure 1 folklore) vs the best bounded
//!    zigzag (exhaustive, Definition 6) vs the bounds-graph longest path
//!    (the Theorem 2 optimum). Quantifies how much of the optimum each
//!    family captures — the paper's case that zigzags are a *strictly*
//!    richer and ultimately complete family.
//! 2. **Longest-path algorithm** — queue-based SPFA (used everywhere) vs
//!    dense Bellman–Ford: identical answers, different work.

use std::time::Instant;

use zigzag_bench::{kicked_run, print_header, print_row, scaled_context};
use zigzag_bcm::{NodeId, ProcessId};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::enumerate::{best_single_fork, best_zigzag, EnumLimits};

fn main() {
    println!("Ablation A — certificate families (random 4-process networks)\n");
    let widths = [6, 8, 14, 14, 14];
    print_header(
        &widths,
        &["seed", "pairs", "fork = opt", "zigzag = opt", "zigzag > fork"],
    );
    let limits = EnumLimits {
        max_leg_len: 3,
        max_forks: 3,
    };
    let mut total_pairs = 0u32;
    let mut fork_opt = 0u32;
    let mut zz_opt = 0u32;
    let mut zz_beats_fork = 0u32;
    for seed in 0..6u64 {
        let ctx = scaled_context(4, 0.45, seed + 40);
        let run = kicked_run(&ctx, ProcessId::new(0), 2, 22, seed);
        let gb = BoundsGraph::of_run(&run);
        let nodes: Vec<NodeId> = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .take(6)
            .collect();
        let (mut pairs, mut f_opt, mut z_opt, mut z_gt_f) = (0u32, 0u32, 0u32, 0u32);
        for &a in &nodes {
            for &b in &nodes {
                let Some((opt, _)) = gb.longest_path(a, b).unwrap() else {
                    continue;
                };
                let Some(zz) = best_zigzag(&run, a, b, limits).unwrap() else {
                    continue;
                };
                assert!(zz.weight <= opt, "enumerated zigzag beats longest path");
                pairs += 1;
                let fork = best_single_fork(&run, a, b, limits).map(|(_, w)| w);
                if fork == Some(opt) {
                    f_opt += 1;
                }
                if zz.weight == opt {
                    z_opt += 1;
                }
                if fork.map_or(true, |f| zz.weight > f) {
                    z_gt_f += 1;
                }
            }
        }
        print_row(
            &widths,
            &[
                seed.to_string(),
                pairs.to_string(),
                format!("{f_opt}/{pairs}"),
                format!("{z_opt}/{pairs}"),
                format!("{z_gt_f}/{pairs}"),
            ],
        );
        total_pairs += pairs;
        fork_opt += f_opt;
        zz_opt += z_opt;
        zz_beats_fork += z_gt_f;
    }
    assert!(zz_opt > fork_opt, "zigzags should capture more optima than forks");
    assert!(zz_beats_fork > 0);
    println!(
        "\nTotals: forks optimal {fork_opt}/{total_pairs}, bounded zigzags optimal \
         {zz_opt}/{total_pairs}, zigzag strictly beats fork {zz_beats_fork}/{total_pairs}."
    );
    println!("Unbounded zigzags are complete (Theorem 2); the gap that remains is");
    println!("purely the enumeration bound (legs ≤ 3, forks ≤ 3).\n");

    println!("Ablation B — SPFA vs dense Bellman–Ford (longest paths to one node)\n");
    let widths = [6, 9, 9, 12, 12, 10];
    print_header(
        &widths,
        &["procs", "vertices", "edges", "SPFA (µs)", "dense (µs)", "agree"],
    );
    for n in [4usize, 8, 16, 24] {
        let ctx = scaled_context(n, 0.3, 7);
        let run = kicked_run(&ctx, ProcessId::new(0), 1, 60, 3);
        let gb = BoundsGraph::of_run(&run);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .last()
            .unwrap();
        let t0 = Instant::now();
        let mut spfa_reps = 0u32;
        let lp = loop {
            let lp = gb.longest_from(sigma).unwrap();
            spfa_reps += 1;
            if t0.elapsed().as_millis() > 20 {
                break lp;
            }
        };
        let spfa_us = t0.elapsed().as_micros() as f64 / spfa_reps as f64;
        let t1 = Instant::now();
        let mut dense_reps = 0u32;
        let dense = loop {
            let d = gb.graph().longest_from_dense(&sigma).unwrap();
            dense_reps += 1;
            if t1.elapsed().as_millis() > 20 {
                break d;
            }
        };
        let dense_us = t1.elapsed().as_micros() as f64 / dense_reps as f64;
        let mut agree = true;
        for i in 0..gb.graph().vertex_count() {
            if lp.weight(i) != dense[i] {
                agree = false;
            }
        }
        print_row(
            &widths,
            &[
                n.to_string(),
                gb.node_count().to_string(),
                gb.edge_count().to_string(),
                format!("{spfa_us:.0}"),
                format!("{dense_us:.0}"),
                agree.to_string(),
            ],
        );
        assert!(agree, "SPFA and dense Bellman–Ford disagree");
    }
    println!("\nIdentical answers; SPFA does strictly less work on these sparse,");
    println!("mostly-DAG-like bounds graphs — the design choice DESIGN.md calls out.");
}
