//! Ablation: certificate families and graph algorithms.
//!
//! 1. **Certificate families** — for random node pairs, the best
//!    single-fork certificate (Figure 1 folklore) vs the best bounded
//!    zigzag (exhaustive, Definition 6) vs the bounds-graph longest path
//!    (the Theorem 2 optimum). Quantifies how much of the optimum each
//!    family captures — the paper's case that zigzags are a *strictly*
//!    richer and ultimately complete family.
//! 2. **Longest-path algorithm** — dense Bellman–Ford vs queue-based SPFA
//!    over the frozen CSR vs the memoized cached-CSR path (warm hits):
//!    identical answers, very different work.

use std::time::Instant;

use zigzag_bcm::{NodeId, ProcessId};
use zigzag_bench::{kicked_run, print_header, print_row, scaled_context};
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::enumerate::{best_single_fork, best_zigzag, EnumLimits};

fn main() {
    println!("Ablation A — certificate families (random 4-process networks)\n");
    let widths = [6, 8, 14, 14, 14];
    print_header(
        &widths,
        &[
            "seed",
            "pairs",
            "fork = opt",
            "zigzag = opt",
            "zigzag > fork",
        ],
    );
    let limits = EnumLimits {
        max_leg_len: 3,
        max_forks: 3,
    };
    let mut total_pairs = 0u32;
    let mut fork_opt = 0u32;
    let mut zz_opt = 0u32;
    let mut zz_beats_fork = 0u32;
    for seed in 0..6u64 {
        let ctx = scaled_context(4, 0.45, seed + 40);
        let run = kicked_run(&ctx, ProcessId::new(0), 2, 22, seed);
        let gb = BoundsGraph::of_run(&run);
        let nodes: Vec<NodeId> = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .take(6)
            .collect();
        let (mut pairs, mut f_opt, mut z_opt, mut z_gt_f) = (0u32, 0u32, 0u32, 0u32);
        for &a in &nodes {
            for &b in &nodes {
                let Some((opt, _)) = gb.longest_path(a, b).unwrap() else {
                    continue;
                };
                let Some(zz) = best_zigzag(&run, a, b, limits).unwrap() else {
                    continue;
                };
                assert!(zz.weight <= opt, "enumerated zigzag beats longest path");
                pairs += 1;
                let fork = best_single_fork(&run, a, b, limits).map(|(_, w)| w);
                if fork == Some(opt) {
                    f_opt += 1;
                }
                if zz.weight == opt {
                    z_opt += 1;
                }
                if fork.is_none_or(|f| zz.weight > f) {
                    z_gt_f += 1;
                }
            }
        }
        print_row(
            &widths,
            &[
                seed.to_string(),
                pairs.to_string(),
                format!("{f_opt}/{pairs}"),
                format!("{z_opt}/{pairs}"),
                format!("{z_gt_f}/{pairs}"),
            ],
        );
        total_pairs += pairs;
        fork_opt += f_opt;
        zz_opt += z_opt;
        zz_beats_fork += z_gt_f;
    }
    assert!(
        zz_opt > fork_opt,
        "zigzags should capture more optima than forks"
    );
    assert!(zz_beats_fork > 0);
    println!(
        "\nTotals: forks optimal {fork_opt}/{total_pairs}, bounded zigzags optimal \
         {zz_opt}/{total_pairs}, zigzag strictly beats fork {zz_beats_fork}/{total_pairs}."
    );
    println!("Unbounded zigzags are complete (Theorem 2); the gap that remains is");
    println!("purely the enumeration bound (legs ≤ 3, forks ≤ 3).\n");

    println!("Ablation B — dense Bellman–Ford vs queue SPFA vs cached CSR\n");
    let widths = [6, 9, 9, 12, 12, 14, 10];
    print_header(
        &widths,
        &[
            "procs",
            "vertices",
            "edges",
            "dense (µs)",
            "SPFA (µs)",
            "cached (ns)",
            "agree",
        ],
    );
    for n in [4usize, 8, 16, 24] {
        let ctx = scaled_context(n, 0.3, 7);
        let run = kicked_run(&ctx, ProcessId::new(0), 1, 60, 3);
        let gb = BoundsGraph::of_run(&run);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .last()
            .unwrap();
        // Each timed closure reports mean time per call over >= 20ms.
        fn time_loop<T>(mut f: impl FnMut() -> T) -> (T, f64) {
            let t0 = Instant::now();
            let mut reps = 0u32;
            let last = loop {
                let v = f();
                reps += 1;
                if t0.elapsed().as_millis() > 20 {
                    break v;
                }
            };
            (last, t0.elapsed().as_nanos() as f64 / reps as f64)
        }
        // Dense Bellman–Ford: |V|−1 full relaxation rounds.
        let (dense, dense_ns) = time_loop(|| gb.graph().longest_from_dense(&sigma).unwrap());
        // Queue SPFA over the frozen CSR, always a fresh traversal.
        let (lp, spfa_ns) = time_loop(|| gb.graph().longest_from(&sigma).unwrap());
        // Cached CSR: the memoized path, warm after the first touch.
        gb.graph().longest_from_cached(&sigma).unwrap();
        let (cached, cached_ns) = time_loop(|| gb.graph().longest_from_cached(&sigma).unwrap());
        let mut agree = true;
        for (i, d) in dense.iter().enumerate() {
            if lp.weight(i) != *d || cached.weight(i) != *d {
                agree = false;
            }
        }
        print_row(
            &widths,
            &[
                n.to_string(),
                gb.node_count().to_string(),
                gb.edge_count().to_string(),
                format!("{:.0}", dense_ns / 1e3),
                format!("{:.0}", spfa_ns / 1e3),
                format!("{cached_ns:.0}"),
                agree.to_string(),
            ],
        );
        assert!(agree, "dense, SPFA and cached CSR must agree");
    }
    println!("\nIdentical answers; SPFA does strictly less work than dense on these");
    println!("sparse, mostly-DAG-like bounds graphs, and the memoized CSR path");
    println!("answers warm repeats in constant time — the shared-analysis design.");
}
