//! Ablation: certificate families and longest-path algorithms — see
//! [`zigzag_bench::experiments::ablation`].

use zigzag_bench::experiments::{ablation, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(ablation::experiment(Profile::Full));
}
