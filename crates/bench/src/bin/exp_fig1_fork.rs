//! E1 (Figure 1): the simple fork — see
//! [`zigzag_bench::experiments::fig1_fork`].

use zigzag_bench::experiments::{fig1_fork, Profile};
use zigzag_bench::harness;

fn main() {
    harness::run_main(fig1_fork::experiment(Profile::Full));
}
