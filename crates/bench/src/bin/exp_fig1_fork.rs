//! E1 (Figure 1): the simple fork. Sweeps the fork weight
//! `L_CB − U_CA` and reports, per weight, the worst observed gap
//! `t_b − t_a` over random schedules, the knowledge threshold at `B`, and
//! whether the optimal protocol acts at `x = weight`.
//!
//! Expected shape (paper §1): the gap never falls below the weight; the
//! bound is achieved (tight); `B` coordinates with **zero** A↔B
//! communication exactly for `x <= L_CB − U_CA`.

use zigzag_bcm::scheduler::RandomScheduler;
use zigzag_bcm::Time;
use zigzag_bench::{fig1_context, kicked_run, mean, min, print_header, print_row};
use zigzag_coord::{CoordKind, OptimalStrategy, Scenario, TimedCoordination};
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::GeneralNode;

fn main() {
    const SEEDS: u64 = 60;
    println!("E1 / Figure 1 — simple-fork coordination, C→A [2,5], C→B [lb, lb+3]");
    println!("fork weight w = L_CB − U_CA; B must guarantee a --w--> b\n");
    let widths = [6, 8, 9, 9, 10, 12];
    print_header(
        &widths,
        &[
            "L_CB",
            "w",
            "min gap",
            "mean gap",
            "max-x at B",
            "acts at x=w",
        ],
    );
    for lb in [3u64, 5, 7, 9, 11, 13] {
        let (ctx, c, a, b) = fig1_context(2, 5, lb, lb + 3);
        let w = lb as i64 - 5;
        let mut gaps = Vec::new();
        let mut max_x_seen = None;
        for seed in 0..SEEDS {
            let run = kicked_run(&ctx, c, 3, 60, seed);
            let sigma_c = run.external_receipt_node(c, "kick").unwrap();
            let theta_a = GeneralNode::chain(sigma_c, &[a]).unwrap();
            let theta_b = GeneralNode::chain(sigma_c, &[b]).unwrap();
            let ta = theta_a.time_in(&run).unwrap();
            let tb = theta_b.time_in(&run).unwrap();
            gaps.push(tb.diff(ta));
            if seed == 0 {
                let sigma_b = theta_b.resolve(&run).unwrap();
                let engine = KnowledgeEngine::new(&run, sigma_b).unwrap();
                max_x_seen = engine.max_x(&theta_a, &theta_b).unwrap();
            }
        }
        // Protocol check at x = w.
        let spec = TimedCoordination::new(CoordKind::Late { x: w }, a, b, c);
        let scenario = Scenario::new(spec, ctx, Time::new(3), Time::new(80)).unwrap();
        let mut acted = 0u32;
        let mut violated = 0u32;
        for seed in 0..20 {
            let (_, v) = scenario
                .run_verified(
                    &mut OptimalStrategy::new(),
                    &mut RandomScheduler::seeded(seed),
                )
                .unwrap();
            acted += v.b_node.is_some() as u32;
            violated += !v.ok as u32;
        }
        assert_eq!(violated, 0, "soundness violated");
        print_row(
            &widths,
            &[
                lb.to_string(),
                w.to_string(),
                min(&gaps).to_string(),
                format!("{:.1}", mean(&gaps)),
                max_x_seen.map_or("—".into(), |m| m.to_string()),
                format!("{acted}/20"),
            ],
        );
        assert!(min(&gaps) >= w, "fork guarantee violated at lb={lb}");
        assert_eq!(max_x_seen, Some(w), "knowledge threshold off at lb={lb}");
    }
    println!("\nSeries shape: min gap == w (tight) and B acts at exactly x = w.");
}
