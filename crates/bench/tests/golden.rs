//! Golden-snapshot and determinism tiers for the experiment harness.
//!
//! Every experiment family renders at [`Profile::Smoke`] — a small
//! fixed-seed configuration with no wall-clock text, so the report is
//! byte-deterministic — and is compared against a committed golden file
//! under `tests/golden/`. Regenerate after an intentional change with:
//!
//! ```text
//! ZIGZAG_BLESS=1 cargo test -p zigzag-bench --test golden
//! ```
//!
//! The determinism tier renders the **full harness** (all families, all
//! cells) at worker counts 1 and 8 and requires byte-identical output —
//! the family-level extension of the coordination layer's serial-fold
//! regression. `render_with(n)` is exactly the code path a
//! `ZIGZAG_THREADS=n` environment selects.

use std::fs;
use std::path::PathBuf;

use zigzag_bench::experiments::{self, Profile};
use zigzag_bench::harness::ExperimentHarness;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn bless_requested() -> bool {
    std::env::var("ZIGZAG_BLESS").is_ok_and(|v| v == "1")
}

fn check_golden(name: &str, report: &str) {
    let path = golden_path(name);
    if bless_requested() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, report).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             ZIGZAG_BLESS=1 cargo test -p zigzag-bench --test golden",
            path.display()
        )
    });
    assert!(
        report == expected,
        "{name} diverged from its golden file {}.\n\
         If the change is intentional, regenerate with ZIGZAG_BLESS=1.\n\
         --- expected ---\n{expected}\n--- actual ---\n{report}",
        path.display()
    );
}

macro_rules! golden_tests {
    ($($name:ident),+ $(,)?) => {$(
        #[test]
        fn $name() {
            let exp = experiments::$name::experiment(Profile::Smoke);
            let name = exp.name();
            check_golden(name, &exp.render());
        }
    )+};
}

golden_tests!(
    fig1_fork,
    fig2_zigzag,
    fig3_visible,
    fig8_extended,
    thm1_soundness,
    thm2_tightness,
    thm3_kop,
    thm4_knowledge,
    protocol_compare,
    ablation,
    online,
    serve,
);

/// Family-level determinism: the whole harness — every family, every
/// cell, one fused parallel map — renders byte-identically at 1 and 8
/// workers (the `ZIGZAG_THREADS=1` vs `ZIGZAG_THREADS=8` contract), and
/// equals the concatenation of the per-family golden reports.
#[test]
fn harness_output_is_worker_count_invariant() {
    let harness = ExperimentHarness::new().experiments(experiments::all(Profile::Smoke));
    assert!(harness.cell_count() > 20, "families lost their cells");
    let serial = harness.render_with(1);
    let parallel = harness.render_with(8);
    assert!(
        serial == parallel,
        "family-parallel harness output diverged from the serial fold"
    );
    if !bless_requested() {
        let concatenated: String = experiments::all(Profile::Smoke)
            .into_iter()
            .map(|e| {
                fs::read_to_string(golden_path(e.name())).expect("golden files exist (bless first)")
            })
            .collect();
        assert!(
            serial == concatenated,
            "harness report is not the concatenation of the family reports"
        );
    }
}
