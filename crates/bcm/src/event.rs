//! Events observed by processes: message receipts and local actions.
//!
//! A process's local state is its initial state followed by the sequence of
//! events it has observed (paper §2.1); in this implementation that history
//! is spread over the [`crate::run::NodeRecord`]s of its timeline.

use std::fmt;

use crate::message::{ExternalId, MessageId};

/// A single receipt observed at a basic node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Receipt {
    /// An internal message arrived on a channel.
    Internal(MessageId),
    /// A spontaneous external input (an element of `E`) arrived.
    External(ExternalId),
}

impl Receipt {
    /// The internal message id, if this is an internal receipt.
    pub fn internal(self) -> Option<MessageId> {
        match self {
            Receipt::Internal(m) => Some(m),
            Receipt::External(_) => None,
        }
    }

    /// The external input id, if this is an external receipt.
    pub fn external(self) -> Option<ExternalId> {
        match self {
            Receipt::External(e) => Some(e),
            Receipt::Internal(_) => None,
        }
    }
}

impl fmt::Display for Receipt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Receipt::Internal(m) => write!(f, "recv({m})"),
            Receipt::External(e) => write!(f, "ext({e})"),
        }
    }
}

/// A named, instantaneous local action performed at a basic node
/// (e.g. the paper's `a` and `b`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionRecord {
    name: String,
}

impl ActionRecord {
    /// Creates an action record with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ActionRecord { name: name.into() }
    }

    /// The action's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for ActionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "act({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipt_projections() {
        let r = Receipt::Internal(MessageId::new(4));
        assert_eq!(r.internal(), Some(MessageId::new(4)));
        assert_eq!(r.external(), None);
        let e = Receipt::External(ExternalId::new(2));
        assert_eq!(e.external(), Some(ExternalId::new(2)));
        assert_eq!(e.internal(), None);
    }

    #[test]
    fn displays() {
        assert_eq!(Receipt::Internal(MessageId::new(1)).to_string(), "recv(m1)");
        assert_eq!(Receipt::External(ExternalId::new(0)).to_string(), "ext(e0)");
        assert_eq!(ActionRecord::new("a").to_string(), "act(a)");
        assert_eq!(ActionRecord::new("b").name(), "b");
    }
}
