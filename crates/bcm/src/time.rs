//! Discrete time, identified with the natural numbers (paper §2.1).
//!
//! A single tick is "the minimal relevant unit of time". Processes in the
//! bcm model never observe [`Time`]; it exists only in the environment's
//! (and the analyst's) frame of reference.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the global timeline (`m ∈ N` in the paper).
///
/// `Time` is a newtype over `u64` ticks. Differences between times are
/// represented as [`i64`] *weights* elsewhere in the workspace, because the
/// paper's timed-precedence bounds may be negative.
///
/// # Examples
///
/// ```
/// use zigzag_bcm::Time;
/// let t = Time::new(5) + 3;
/// assert_eq!(t, Time::new(8));
/// assert_eq!(t.diff(Time::new(10)), -2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Time zero, where every run starts with the initial global state.
    pub const ZERO: Time = Time(0);

    /// Creates a time point at `ticks`.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the number of ticks since time zero.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns `self - other` as a signed weight.
    ///
    /// ```
    /// use zigzag_bcm::Time;
    /// assert_eq!(Time::new(3).diff(Time::new(7)), -4);
    /// ```
    #[inline]
    pub fn diff(self, other: Time) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Adds a signed offset, saturating at zero.
    ///
    /// ```
    /// use zigzag_bcm::Time;
    /// assert_eq!(Time::new(3).offset(-10), Time::ZERO);
    /// assert_eq!(Time::new(3).offset(4), Time::new(7));
    /// ```
    #[inline]
    pub fn offset(self, delta: i64) -> Time {
        if delta >= 0 {
            Time(self.0.saturating_add(delta as u64))
        } else {
            Time(self.0.saturating_sub(delta.unsigned_abs()))
        }
    }

    /// The immediately following tick.
    #[inline]
    pub fn next(self) -> Time {
        Time(self.0 + 1)
    }

    /// Whether this is time zero (the initial global state).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    #[inline]
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<Time> for u64 {
    #[inline]
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add<u64> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = i64;
    #[inline]
    fn sub(self, rhs: Time) -> i64 {
        self.diff(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Time::ZERO.ticks(), 0);
        assert!(Time::ZERO.is_zero());
        assert_eq!(Time::new(17).ticks(), 17);
        assert!(!Time::new(1).is_zero());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Time::new(2) + 3, Time::new(5));
        assert_eq!(Time::new(9) - Time::new(4), 5);
        assert_eq!(Time::new(4) - Time::new(9), -5);
        assert_eq!(Time::new(4).next(), Time::new(5));
    }

    #[test]
    fn offsets_saturate() {
        assert_eq!(Time::new(2).offset(-5), Time::ZERO);
        assert_eq!(Time::new(2).offset(5), Time::new(7));
        assert_eq!(Time::new(2).offset(0), Time::new(2));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Time::new(1) < Time::new(2));
        assert_eq!(Time::new(12).to_string(), "t12");
        let mut t = Time::new(1);
        t += 2;
        assert_eq!(t, Time::new(3));
    }

    #[test]
    fn conversions() {
        let t: Time = 7u64.into();
        assert_eq!(u64::from(t), 7);
    }
}
