//! Stock network topologies used by examples, tests and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::BcmError;
use crate::net::{Context, Network, ProcessId};

/// A bidirectional line `p0 — p1 — … — p(n-1)` with uniform bounds.
///
/// # Errors
///
/// Fails if `n == 0` or the bounds are invalid.
pub fn line(n: usize, lower: u64, upper: u64) -> Result<Context, BcmError> {
    let mut b = Network::builder();
    let ids = b.add_processes(n);
    for w in ids.windows(2) {
        b.add_bidirectional(w[0], w[1], lower, upper)?;
    }
    b.build()
}

/// A bidirectional ring over `n >= 3` processes with uniform bounds.
///
/// # Errors
///
/// Fails if `n < 3` or the bounds are invalid.
pub fn ring(n: usize, lower: u64, upper: u64) -> Result<Context, BcmError> {
    if n < 3 {
        return Err(BcmError::InvalidPath {
            detail: "ring needs at least 3 processes".into(),
        });
    }
    let mut b = Network::builder();
    let ids = b.add_processes(n);
    for k in 0..n {
        b.add_bidirectional(ids[k], ids[(k + 1) % n], lower, upper)?;
    }
    b.build()
}

/// A star: hub `p0` bidirectionally connected to `n - 1` leaves.
///
/// # Errors
///
/// Fails if `n < 2` or the bounds are invalid.
pub fn star(n: usize, lower: u64, upper: u64) -> Result<Context, BcmError> {
    if n < 2 {
        return Err(BcmError::InvalidPath {
            detail: "star needs at least 2 processes".into(),
        });
    }
    let mut b = Network::builder();
    let ids = b.add_processes(n);
    for &leaf in &ids[1..] {
        b.add_bidirectional(ids[0], leaf, lower, upper)?;
    }
    b.build()
}

/// The complete bidirectional graph over `n` processes with uniform bounds.
///
/// # Errors
///
/// Fails if `n == 0` or the bounds are invalid.
pub fn complete(n: usize, lower: u64, upper: u64) -> Result<Context, BcmError> {
    let mut b = Network::builder();
    let ids = b.add_processes(n);
    for x in 0..n {
        for y in (x + 1)..n {
            b.add_bidirectional(ids[x], ids[y], lower, upper)?;
        }
    }
    b.build()
}

/// A random strongly-connected-ish network: a bidirectional ring backbone
/// (guaranteeing strong connectivity) plus each extra directed edge with
/// probability `extra_p`; bounds drawn uniformly with
/// `L ∈ [1, max_lower]` and `U ∈ [L, L + max_slack]`. Deterministic in
/// `seed`.
///
/// # Errors
///
/// Fails if `n < 3`.
pub fn random(
    n: usize,
    extra_p: f64,
    max_lower: u64,
    max_slack: u64,
    seed: u64,
) -> Result<Context, BcmError> {
    if n < 3 {
        return Err(BcmError::InvalidPath {
            detail: "random topology needs at least 3 processes".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let max_lower = max_lower.max(1);
    let mut b = Network::builder();
    let ids = b.add_processes(n);
    let mut have = std::collections::BTreeSet::new();
    for k in 0..n {
        for (from, to) in [(ids[k], ids[(k + 1) % n]), (ids[(k + 1) % n], ids[k])] {
            let l = rng.gen_range(1..=max_lower);
            let u = l + rng.gen_range(0..=max_slack);
            b.add_channel(from, to, l, u)?;
            have.insert((from, to));
        }
    }
    for x in 0..n {
        for y in 0..n {
            if x == y {
                continue;
            }
            let e = (ids[x], ids[y]);
            if have.contains(&e) {
                continue;
            }
            if rng.gen_bool(extra_p.clamp(0.0, 1.0)) {
                let l = rng.gen_range(1..=max_lower);
                let u = l + rng.gen_range(0..=max_slack);
                b.add_channel(e.0, e.1, l, u)?;
            }
        }
    }
    b.build()
}

/// Convenience: the ids `(p0, …)` of the first `k` processes of a context.
pub fn first_processes(ctx: &Context, k: usize) -> Vec<ProcessId> {
    ctx.network().processes().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let ctx = line(4, 1, 3).unwrap();
        let net = ctx.network();
        assert_eq!(net.len(), 4);
        assert_eq!(net.channels().len(), 6);
        assert!(net.has_channel(ProcessId::new(1), ProcessId::new(2)));
        assert!(!net.has_channel(ProcessId::new(0), ProcessId::new(2)));
    }

    #[test]
    fn ring_shape() {
        let ctx = ring(5, 2, 2).unwrap();
        assert_eq!(ctx.network().channels().len(), 10);
        assert!(ring(2, 1, 1).is_err());
    }

    #[test]
    fn star_shape() {
        let ctx = star(4, 1, 1).unwrap();
        let net = ctx.network();
        assert_eq!(net.out_neighbors(ProcessId::new(0)).len(), 3);
        assert_eq!(net.out_neighbors(ProcessId::new(2)).len(), 1);
        assert!(star(1, 1, 1).is_err());
    }

    #[test]
    fn complete_shape() {
        let ctx = complete(4, 1, 2).unwrap();
        assert_eq!(ctx.network().channels().len(), 12);
    }

    #[test]
    fn random_is_deterministic_and_connected() {
        let a = random(6, 0.3, 3, 4, 99).unwrap();
        let b = random(6, 0.3, 3, 4, 99).unwrap();
        assert_eq!(a.network().channels(), b.network().channels());
        // Ring backbone present.
        for k in 0..6u32 {
            assert!(a
                .network()
                .has_channel(ProcessId::new(k), ProcessId::new((k + 1) % 6)));
        }
        // Bounds are valid by construction (builder would have failed).
        for (_, cb) in a.bounds().iter() {
            assert!(cb.lower() >= 1 && cb.lower() <= cb.upper());
        }
    }

    #[test]
    fn first_processes_helper() {
        let ctx = line(4, 1, 1).unwrap();
        let ps = first_processes(&ctx, 2);
        assert_eq!(ps, vec![ProcessId::new(0), ProcessId::new(1)]);
    }
}
