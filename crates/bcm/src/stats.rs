//! Run statistics: message latencies, flood depth, and per-process load.
//!
//! Experiment harnesses summarize runs with these; they are also a quick
//! smoke check that a scheduler behaves as configured (e.g. eager runs
//! have zero mean slack-used, lazy runs use all of it).

use std::fmt;

use crate::run::Run;
use crate::time::Time;

/// Aggregated statistics of one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Total basic nodes (including initial nodes).
    pub nodes: usize,
    /// Messages sent within the horizon.
    pub messages_sent: usize,
    /// Messages delivered within the horizon.
    pub messages_delivered: usize,
    /// Messages still in flight at the horizon.
    pub in_flight: usize,
    /// External inputs delivered.
    pub externals: usize,
    /// Mean delivery latency (delivered messages only).
    pub mean_latency: f64,
    /// Mean fraction of the `[L, U]` window used
    /// (`0.0` = all at lower bounds, `1.0` = all at upper bounds).
    pub mean_slack_used: f64,
    /// Latest recorded node time.
    pub makespan: Time,
    /// Maximum nodes on any single process timeline.
    pub max_timeline: usize,
}

impl RunStats {
    /// Computes the statistics of `run`.
    pub fn of(run: &Run) -> Self {
        let bounds = run.context().bounds();
        let mut delivered = 0usize;
        let mut latency_sum = 0u64;
        let mut slack_sum = 0.0f64;
        let mut slack_samples = 0usize;
        for m in run.messages() {
            let Some(d) = m.delivery() else { continue };
            delivered += 1;
            let lat = (d.time - m.sent_at()).max(0) as u64;
            latency_sum += lat;
            let cb = bounds.get(m.channel()).expect("recorded channels bounded");
            if cb.slack() > 0 {
                slack_sum += (lat - cb.lower()) as f64 / cb.slack() as f64;
                slack_samples += 1;
            }
        }
        let makespan = run.nodes().map(|r| r.time()).max().unwrap_or(Time::ZERO);
        let max_timeline = run
            .context()
            .network()
            .processes()
            .map(|p| run.timeline(p).len())
            .max()
            .unwrap_or(0);
        RunStats {
            nodes: run.node_count(),
            messages_sent: run.messages().len(),
            messages_delivered: delivered,
            in_flight: run.messages().len() - delivered,
            externals: run.externals().len(),
            mean_latency: if delivered > 0 {
                latency_sum as f64 / delivered as f64
            } else {
                f64::NAN
            },
            mean_slack_used: if slack_samples > 0 {
                slack_sum / slack_samples as f64
            } else {
                f64::NAN
            },
            makespan,
            max_timeline,
        }
    }
}

/// Mean of an `i64` sample (`NaN` when empty). Shared by the experiment
/// harnesses summarizing per-seed measurements.
pub fn mean(xs: &[i64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<i64>() as f64 / xs.len() as f64
}

/// Minimum of an `i64` sample (`i64::MAX` when empty).
pub fn min(xs: &[i64]) -> i64 {
    xs.iter().copied().min().unwrap_or(i64::MAX)
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} msgs ({} delivered, {} in flight), {} externals, \
             mean latency {:.2}, slack used {:.0}%, makespan {}",
            self.nodes,
            self.messages_sent,
            self.messages_delivered,
            self.in_flight,
            self.externals,
            self.mean_latency,
            self.mean_slack_used * 100.0,
            self.makespan
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::protocols::Ffip;
    use crate::scheduler::{EagerScheduler, LazyScheduler};
    use crate::sim::{SimConfig, Simulator};
    use crate::time::Time;

    fn run_with(sched: &mut dyn crate::scheduler::Scheduler) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 2, 6).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), sched).unwrap()
    }

    #[test]
    fn eager_uses_no_slack_lazy_uses_all() {
        let eager = RunStats::of(&run_with(&mut EagerScheduler));
        assert_eq!(eager.mean_slack_used, 0.0);
        assert_eq!(eager.mean_latency, 2.0);
        let lazy = RunStats::of(&run_with(&mut LazyScheduler));
        assert_eq!(lazy.mean_slack_used, 1.0);
        assert_eq!(lazy.mean_latency, 6.0);
        assert!(eager.nodes > lazy.nodes); // eager floods denser
        assert_eq!(eager.externals, 1);
        assert!(eager.makespan <= Time::new(30));
        assert!(eager.max_timeline >= 2);
    }

    #[test]
    fn in_flight_accounting() {
        let run = run_with(&mut LazyScheduler);
        let s = RunStats::of(&run);
        assert_eq!(s.messages_sent, s.messages_delivered + s.in_flight);
        // The last flood is always in flight at the horizon.
        assert!(s.in_flight >= 1);
        assert!(s.to_string().contains("in flight"));
    }

    #[test]
    fn quiescent_run_stats() {
        let mut b = Network::builder();
        let _ = b.add_process("solo");
        let ctx = b.build().unwrap();
        let run = Run::skeleton(ctx, Time::new(5));
        let s = RunStats::of(&run);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.messages_sent, 0);
        assert!(s.mean_latency.is_nan());
        assert!(s.mean_slack_used.is_nan());
        assert_eq!(s.makespan, Time::ZERO);
    }
}
