//! Deterministic data-parallel helpers for sweep workloads.
//!
//! The coordination sweeps and experiment binaries fan independent
//! `(parameter, seed)` grid points across threads. The build environment
//! has no `rayon`, so this module provides the one primitive those
//! callers need — an **order-preserving** parallel map over a slice —
//! built on `std::thread::scope`. Results are written into their input's
//! slot, so the output is byte-identical to the serial
//! `items.iter().map(f).collect()` regardless of scheduling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count used by [`par_map`]: the machine's available
/// parallelism, overridable (e.g. for reproducible benchmarks) via the
/// `ZIGZAG_THREADS` environment variable; `1` disables threading.
pub fn thread_count() -> usize {
    if let Some(n) = std::env::var("ZIGZAG_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output: `par_map(items, f)` returns exactly what
/// `items.iter().map(f).collect::<Vec<_>>()` would.
///
/// Work is distributed by atomic work-stealing over item indices, so
/// heterogeneous per-item costs (e.g. larger `x` values simulating longer
/// runs) balance across workers while the output order stays fixed.
///
/// Panics in `f` are propagated to the caller after all workers stop.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (`1` = run serially on the
/// calling thread). `par_map` delegates here with [`thread_count`]
/// workers; tests and callers embedded in wider parallelism pin the count
/// themselves.
pub fn par_map_with<T: Sync, R: Send>(
    workers: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut batches: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break local;
                        }
                        local.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, value) in batches.drain(..).flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        // Pin 4 workers so the threaded path is exercised even on a
        // single-CPU machine (where thread_count() falls back to 1).
        let items: Vec<u64> = (0..257).collect();
        let out = par_map_with(4, &items, |&x| x * x);
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, serial);
        assert_eq!(par_map(&items, |&x| x * x), serial);
    }

    #[test]
    fn handles_tiny_inputs() {
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
        assert_eq!(par_map_with(0, &[7], |&x| x + 1), vec![8]); // clamps to 1
    }

    #[test]
    fn unbalanced_work_still_ordered() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_with(4, &items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let items: Vec<u64> = (0..8).collect();
        let _ = par_map_with(4, &items, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
