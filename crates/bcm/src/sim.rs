//! The discrete-event simulation engine producing recorded [`Run`]s.
//!
//! The engine plays the system dynamics of paper §2.1: processes are
//! event-driven; the environment (a [`Scheduler`]) chooses delivery times
//! within channel bounds; every receipt triggers FFIP flooding to all
//! out-neighbors; the application [`Protocol`] chooses local actions.

use std::collections::BTreeMap;

use crate::error::BcmError;
use crate::event::Receipt;
use crate::message::{ExternalId, ExternalRecord, MessageId, MessageRecord};
use crate::net::{Channel, Context, ProcessId};
use crate::process::Protocol;
use crate::run::{NodeId, NodeRecord, Run};
use crate::scheduler::{PendingSend, Scheduler};
use crate::time::Time;
use crate::view::View;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Record the run up to (and including) this time.
    pub horizon: Time,
}

impl SimConfig {
    /// Creates a configuration recording up to `horizon`.
    pub fn with_horizon(horizon: Time) -> Self {
        SimConfig { horizon }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: Time::new(100),
        }
    }
}

#[derive(Debug, Default)]
struct Batch {
    messages: Vec<MessageId>,
    externals: Vec<usize>,
}

/// The simulator: a context, a horizon, and scheduled external inputs.
///
/// # Examples
///
/// ```
/// use zigzag_bcm::{Simulator, SimConfig, Network, Time};
/// use zigzag_bcm::protocols::Ffip;
/// use zigzag_bcm::scheduler::RandomScheduler;
/// # fn main() -> Result<(), zigzag_bcm::BcmError> {
/// let mut b = Network::builder();
/// let i = b.add_process("i");
/// let j = b.add_process("j");
/// b.add_bidirectional(i, j, 1, 4)?;
/// let ctx = b.build()?;
/// let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(50)));
/// sim.external(Time::new(1), i, "kick");
/// let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(7))?;
/// assert!(run.node_count() > 2); // flooding ping-pong filled the horizon
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    context: std::sync::Arc<Context>,
    config: SimConfig,
    externals: Vec<(Time, ProcessId, String)>,
}

impl Simulator {
    /// Creates a simulator for `context` (owned, or shared as an
    /// `Arc<Context>` so batch workloads don't deep-copy the network per
    /// simulator).
    pub fn new(context: impl Into<std::sync::Arc<Context>>, config: SimConfig) -> Self {
        Simulator {
            context: context.into(),
            config,
            externals: Vec::new(),
        }
    }

    /// Schedules a spontaneous external input named `name` to be delivered
    /// to `proc` at time `time`.
    ///
    /// External deliveries at time 0 are rejected at run time (processes
    /// cannot act at time 0, paper §2.1 footnote 4).
    pub fn external(&mut self, time: Time, proc: ProcessId, name: impl Into<String>) -> &mut Self {
        self.externals.push((time, proc, name.into()));
        self
    }

    /// The context the simulator operates in.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Runs the system, producing a recorded run prefix.
    ///
    /// # Errors
    ///
    /// Fails if an external input is invalid (time 0, unknown process) or if
    /// the scheduler returns an out-of-window delivery time.
    pub fn run(
        &self,
        protocol: &mut dyn Protocol,
        scheduler: &mut dyn Scheduler,
    ) -> Result<Run, BcmError> {
        let horizon = self.config.horizon;
        let mut run = Run::skeleton(self.context.clone(), horizon);

        // (time, proc) -> batch of receipts, deterministic order.
        let mut queue: BTreeMap<(Time, ProcessId), Batch> = BTreeMap::new();

        // Register external inputs.
        let mut ext_records: Vec<(Time, ProcessId, String)> = self.externals.clone();
        ext_records.sort();
        for (k, (t, p, name)) in ext_records.iter().enumerate() {
            if t.is_zero() {
                return Err(BcmError::InvalidExternal {
                    detail: format!("external '{name}' scheduled at time 0"),
                });
            }
            if !self.context.network().contains(*p) {
                return Err(BcmError::InvalidExternal {
                    detail: format!("external '{name}' targets unknown process {p}"),
                });
            }
            if *t > horizon {
                continue;
            }
            queue.entry((*t, *p)).or_default().externals.push(k);
        }

        while let Some((&(time, proc), _)) = queue.iter().next() {
            let batch = queue.remove(&(time, proc)).expect("key just observed");
            debug_assert!(time <= horizon);

            // Create the new basic node observing this batch.
            let index = run.timeline(proc).len() as u32;
            let node = NodeId::new(proc, index);
            let mut rec = NodeRecord::new(node, time);
            for m in &batch.messages {
                rec.push_receipt(Receipt::Internal(*m));
            }
            for &k in &batch.externals {
                let (t, p, name) = &ext_records[k];
                debug_assert_eq!((*t, *p), (time, proc));
                let eid = ExternalId::new(run.externals().len() as u32);
                rec.push_receipt(Receipt::External(eid));
                run.push_external(ExternalRecord::new(eid, name.clone(), proc, time, node));
            }
            run.push_node(rec);
            for m in &batch.messages {
                run.message_mut(*m).set_delivery(node, time);
            }

            // Application actions.
            let actions = {
                let view = View::new(&run, node);
                protocol.on_event(&view)
            };
            for a in actions {
                run.node_mut(node)
                    .push_action(crate::event::ActionRecord::new(a.into_name()));
            }

            // FFIP flooding: send full-information messages to all
            // out-neighbors.
            let neighbors: Vec<ProcessId> = self.context.network().out_neighbors(proc).to_vec();
            for dst in neighbors {
                let channel = Channel::new(proc, dst);
                let bounds = self
                    .context
                    .bounds()
                    .get(channel)
                    .expect("network channels always have bounds");
                let send = PendingSend {
                    src: node,
                    channel,
                    sent_at: time,
                    bounds,
                };
                let deliver_at = scheduler.schedule(&run, send);
                if deliver_at < send.earliest() || deliver_at > send.latest() {
                    return Err(BcmError::SchedulerMisbehaved {
                        detail: format!(
                            "channel {channel}: sent at {time}, scheduled {deliver_at}, window [{}, {}]",
                            send.earliest(),
                            send.latest()
                        ),
                    });
                }
                let mid = MessageId::new(run.messages().len() as u32);
                run.push_message(MessageRecord::new(mid, node, channel, time, deliver_at));
                run.node_mut(node).push_sent(mid);
                if deliver_at <= horizon {
                    queue
                        .entry((deliver_at, dst))
                        .or_default()
                        .messages
                        .push(mid);
                }
            }
        }

        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::protocols::Ffip;
    use crate::scheduler::{EagerScheduler, FnScheduler, LazyScheduler};
    use crate::validate::{validate_run, Strictness};

    fn pair() -> Context {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn quiescent_without_externals() {
        let sim = Simulator::new(pair(), SimConfig::with_horizon(Time::new(50)));
        let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
        assert_eq!(run.node_count(), 2); // only initial nodes
        assert!(run.messages().is_empty());
    }

    #[test]
    fn flooding_ping_pong() {
        let ctx = pair();
        let i = ProcessId::new(0);
        let j = ProcessId::new(1);
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(20)));
        sim.external(Time::new(1), i, "kick");
        let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
        // i acts at 1, sends to j (arrives 3), j replies (arrives 5), ...
        assert_eq!(run.time(NodeId::new(i, 1)), Some(Time::new(1)));
        assert_eq!(run.time(NodeId::new(j, 1)), Some(Time::new(3)));
        assert_eq!(run.time(NodeId::new(i, 2)), Some(Time::new(5)));
        validate_run(&run, Strictness::Strict).unwrap();
        // With eager delivery, nodes appear every 2 ticks until the horizon.
        assert!(run.timeline(i).len() >= 5);
    }

    #[test]
    fn lazy_schedule_validates() {
        let mut sim = Simulator::new(pair(), SimConfig::with_horizon(Time::new(23)));
        sim.external(Time::new(2), ProcessId::new(1), "kick");
        let run = sim.run(&mut Ffip::new(), &mut LazyScheduler).unwrap();
        validate_run(&run, Strictness::Strict).unwrap();
        assert_eq!(
            run.time(NodeId::new(ProcessId::new(0), 1)),
            Some(Time::new(7))
        );
    }

    #[test]
    fn rejects_time_zero_external() {
        let mut sim = Simulator::new(pair(), SimConfig::default());
        sim.external(Time::ZERO, ProcessId::new(0), "bad");
        let err = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap_err();
        assert!(matches!(err, BcmError::InvalidExternal { .. }));
    }

    #[test]
    fn rejects_unknown_external_target() {
        let mut sim = Simulator::new(pair(), SimConfig::default());
        sim.external(Time::new(1), ProcessId::new(9), "bad");
        let err = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap_err();
        assert!(matches!(err, BcmError::InvalidExternal { .. }));
    }

    #[test]
    fn rejects_misbehaving_scheduler() {
        let mut sim = Simulator::new(pair(), SimConfig::default());
        sim.external(Time::new(1), ProcessId::new(0), "kick");
        let mut bad = FnScheduler(|_: &Run, send: PendingSend| send.sent_at); // too early
        let err = sim.run(&mut Ffip::new(), &mut bad).unwrap_err();
        assert!(matches!(err, BcmError::SchedulerMisbehaved { .. }));
    }

    #[test]
    fn externals_beyond_horizon_are_dropped() {
        let mut sim = Simulator::new(pair(), SimConfig::with_horizon(Time::new(5)));
        sim.external(Time::new(9), ProcessId::new(0), "late");
        let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
        assert!(run.externals().is_empty());
        assert_eq!(run.node_count(), 2);
    }

    #[test]
    fn simultaneous_deliveries_form_one_node() {
        // Two externals to the same process at the same time: one node.
        let mut sim = Simulator::new(pair(), SimConfig::with_horizon(Time::new(10)));
        sim.external(Time::new(3), ProcessId::new(0), "x");
        sim.external(Time::new(3), ProcessId::new(0), "y");
        let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
        let tl = run.timeline(ProcessId::new(0));
        assert_eq!(tl[1].receipts().len(), 2);
        validate_run(&run, Strictness::Strict).unwrap();
    }
}
