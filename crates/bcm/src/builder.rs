//! Direct construction of run records.
//!
//! The causality layer builds alternative runs from valid timing functions
//! (paper Lemma 8) node by node rather than through the simulator; tests
//! also use this to lay out the paper's figures exactly. A built run
//! carries no guarantees by itself — pass it to
//! [`crate::validate::validate_run`] to certify legality.

use crate::error::BcmError;
use crate::event::{ActionRecord, Receipt};
use crate::message::{ExternalId, ExternalRecord, MessageId, MessageRecord};
use crate::net::{Channel, Context, ProcessId};
use crate::run::{NodeId, NodeRecord, Run};
use crate::time::Time;

/// Incremental constructor for [`Run`]s.
///
/// # Examples
///
/// ```
/// use zigzag_bcm::{Network, Time};
/// use zigzag_bcm::builder::RunBuilder;
/// use zigzag_bcm::validate::{validate_run, Strictness};
/// # fn main() -> Result<(), zigzag_bcm::BcmError> {
/// let mut nb = Network::builder();
/// let i = nb.add_process("i");
/// let j = nb.add_process("j");
/// nb.add_channel(i, j, 2, 4)?;
/// nb.add_channel(j, i, 2, 4)?;
/// let ctx = nb.build()?;
///
/// let mut rb = RunBuilder::new(ctx, Time::new(10));
/// let ni = rb.add_node(i, Time::new(1))?;
/// rb.add_external(ni, "kick")?;
/// let m = rb.send(ni, j, Time::new(3))?;
/// let nj = rb.add_node(j, Time::new(3))?;
/// rb.deliver(m, nj)?;
/// let m2 = rb.send(nj, i, Time::new(7))?; // due beyond... delivered below
/// let ni2 = rb.add_node(i, Time::new(7))?;
/// rb.deliver(m2, ni2)?;
/// let m3 = rb.send(ni2, j, Time::new(11))?; // due beyond horizon
/// let run = rb.finish();
/// # let _ = m3;
/// validate_run(&run, Strictness::Strict)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RunBuilder {
    run: Run,
}

impl RunBuilder {
    /// Starts from the skeleton run (initial nodes only) of `context`.
    pub fn new(context: impl Into<std::sync::Arc<Context>>, horizon: Time) -> Self {
        RunBuilder {
            run: Run::skeleton(context, horizon),
        }
    }

    /// Resumes construction on top of an already-recorded run. The
    /// builder keeps no state beyond the run itself (next message and
    /// external ids are the table lengths, timelines carry their own
    /// last-node times), so adoption is exact: appends continue precisely
    /// as if the run had been grown through this builder from the start.
    pub fn adopt(run: Run) -> Self {
        RunBuilder { run }
    }

    /// Read access to the run under construction.
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// Appends a node on `proc`'s timeline at `time`, returning its id.
    ///
    /// # Errors
    ///
    /// Fails if `proc` is unknown or `time` does not strictly exceed the
    /// previous node's time.
    pub fn add_node(&mut self, proc: ProcessId, time: Time) -> Result<NodeId, BcmError> {
        if !self.run.context().network().contains(proc) {
            return Err(BcmError::UnknownProcess(proc));
        }
        let tl = self.run.timeline(proc);
        let last = tl.last().expect("skeleton guarantees an initial node");
        if time <= last.time() {
            return Err(BcmError::IllegalRun {
                detail: format!(
                    "node time {time} on {proc} does not exceed previous {}",
                    last.time()
                ),
            });
        }
        let id = NodeId::new(proc, tl.len() as u32);
        self.run.push_node(NodeRecord::new(id, time));
        Ok(id)
    }

    /// Records an external input named `name` arriving at `node`.
    ///
    /// # Errors
    ///
    /// Fails if `node` does not exist or is an initial node.
    pub fn add_external(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
    ) -> Result<ExternalId, BcmError> {
        let time = self.run.node_checked(node)?.time();
        if node.is_initial() {
            return Err(BcmError::InvalidExternal {
                detail: "external input at an initial node".into(),
            });
        }
        let eid = ExternalId::new(self.run.externals().len() as u32);
        self.run
            .push_external(ExternalRecord::new(eid, name, node.proc(), time, node));
        self.run.node_mut(node).push_receipt(Receipt::External(eid));
        Ok(eid)
    }

    /// Records that `src` sends a message to `dst`, with the environment
    /// committing to delivery at `scheduled`.
    ///
    /// # Errors
    ///
    /// Fails if `src` does not exist or the channel is missing.
    /// (Bounds violations are left to the validator so that tests can
    /// construct deliberately illegal runs.)
    pub fn send(
        &mut self,
        src: NodeId,
        dst: ProcessId,
        scheduled: Time,
    ) -> Result<MessageId, BcmError> {
        let sent_at = self.run.node_checked(src)?.time();
        let channel = Channel::new(src.proc(), dst);
        if !self
            .run
            .context()
            .network()
            .has_channel(channel.from, channel.to)
        {
            return Err(BcmError::MissingChannel {
                from: channel.from,
                to: channel.to,
            });
        }
        let mid = MessageId::new(self.run.messages().len() as u32);
        self.run
            .push_message(MessageRecord::new(mid, src, channel, sent_at, scheduled));
        self.run.node_mut(src).push_sent(mid);
        Ok(mid)
    }

    /// Records delivery of `msg` at `node` (whose time becomes the
    /// delivery time).
    ///
    /// # Errors
    ///
    /// Fails if the message or node is unknown, or the message was already
    /// delivered.
    pub fn deliver(&mut self, msg: MessageId, node: NodeId) -> Result<(), BcmError> {
        let time = self.run.node_checked(node)?.time();
        if msg.index() >= self.run.messages().len() {
            return Err(BcmError::UnknownNode {
                detail: format!("message {msg} does not exist"),
            });
        }
        if self.run.message(msg).is_delivered() {
            return Err(BcmError::IllegalRun {
                detail: format!("message {msg} delivered twice"),
            });
        }
        self.run.message_mut(msg).set_delivery(node, time);
        self.run.node_mut(node).push_receipt(Receipt::Internal(msg));
        Ok(())
    }

    /// Records an action named `name` at `node`.
    ///
    /// # Errors
    ///
    /// Fails if `node` does not exist.
    pub fn act(&mut self, node: NodeId, name: impl Into<String>) -> Result<(), BcmError> {
        self.run.node_checked(node)?;
        self.run.node_mut(node).push_action(ActionRecord::new(name));
        Ok(())
    }

    /// Adjusts the recorded horizon.
    pub fn set_horizon(&mut self, horizon: Time) {
        self.run.set_horizon(horizon);
    }

    /// Finalizes the run.
    pub fn finish(self) -> Run {
        self.run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::validate::{validate_run, Strictness};

    fn ctx() -> Context {
        let mut nb = Network::builder();
        let i = nb.add_process("i");
        let j = nb.add_process("j");
        nb.add_bidirectional(i, j, 1, 3).unwrap();
        nb.build().unwrap()
    }

    #[test]
    fn build_and_validate_round_trip() {
        let i = ProcessId::new(0);
        let j = ProcessId::new(1);
        let mut rb = RunBuilder::new(ctx(), Time::new(8));
        let ni = rb.add_node(i, Time::new(1)).unwrap();
        rb.add_external(ni, "kick").unwrap();
        let m_ij = rb.send(ni, j, Time::new(2)).unwrap();
        let nj = rb.add_node(j, Time::new(2)).unwrap();
        rb.deliver(m_ij, nj).unwrap();
        let m_ji = rb.send(nj, i, Time::new(5)).unwrap();
        let ni2 = rb.add_node(i, Time::new(5)).unwrap();
        rb.deliver(m_ji, ni2).unwrap();
        let _due_late = rb.send(ni2, j, Time::new(8)).unwrap();
        let nj2 = rb.add_node(j, Time::new(8)).unwrap();
        rb.deliver(_due_late, nj2).unwrap();
        let _beyond = rb.send(nj2, i, Time::new(9)).unwrap();
        rb.act(ni2, "a").unwrap();
        let run = rb.finish();
        validate_run(&run, Strictness::Strict).unwrap();
        assert_eq!(run.action_node(i, "a"), Some(ni2));
    }

    #[test]
    fn builder_rejects_bad_ops() {
        let i = ProcessId::new(0);
        let mut rb = RunBuilder::new(ctx(), Time::new(8));
        assert!(rb.add_node(ProcessId::new(9), Time::new(1)).is_err());
        let ni = rb.add_node(i, Time::new(2)).unwrap();
        assert!(rb.add_node(i, Time::new(2)).is_err()); // not increasing
        assert!(rb.add_external(NodeId::initial(i), "bad").is_err());
        assert!(rb.send(ni, ProcessId::new(0), Time::new(3)).is_err()); // self-loop channel missing
        let m = rb.send(ni, ProcessId::new(1), Time::new(3)).unwrap();
        let nj = rb.add_node(ProcessId::new(1), Time::new(3)).unwrap();
        rb.deliver(m, nj).unwrap();
        assert!(rb.deliver(m, nj).is_err()); // double delivery
        assert!(rb.act(NodeId::new(i, 9), "x").is_err());
        rb.set_horizon(Time::new(3));
        assert_eq!(rb.run().horizon(), Time::new(3));
    }

    #[test]
    fn builder_allows_illegal_bounds_for_validator_tests() {
        // Deliveries violating bounds are constructible, then caught.
        let i = ProcessId::new(0);
        let j = ProcessId::new(1);
        let mut rb = RunBuilder::new(ctx(), Time::new(20));
        let ni = rb.add_node(i, Time::new(1)).unwrap();
        rb.add_external(ni, "kick").unwrap();
        let m = rb.send(ni, j, Time::new(10)).unwrap(); // U = 3, too late
        let _ = rb.send(ni, j, Time::new(2)); // second send to same dst is fine for builder
        let nj = rb.add_node(j, Time::new(10)).unwrap();
        rb.deliver(m, nj).unwrap();
        let run = rb.finish();
        assert!(validate_run(&run, Strictness::Prefix).is_err());
    }
}
