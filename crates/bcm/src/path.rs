//! Paths in the network graph, written as process-name sequences (paper
//! §2.1): `[i_1, …, i_d]`, with composition `p ∘ q` when the last element of
//! `p` equals the first of `q`.

use std::fmt;

use crate::error::BcmError;
use crate::net::{Channel, Network, ProcessId};

/// A non-empty sequence of process names describing a route in `Net`.
///
/// A *singleton* path `[i]` denotes "stay at `i`" and has zero hops; the
/// paper writes it simply as `i`.
///
/// # Examples
///
/// ```
/// use zigzag_bcm::{NetPath, ProcessId};
/// let p = NetPath::new(vec![ProcessId::new(0), ProcessId::new(1)])?;
/// let q = NetPath::new(vec![ProcessId::new(1), ProcessId::new(2)])?;
/// let pq = p.compose(&q)?;
/// assert_eq!(pq.len(), 3);
/// assert_eq!(pq.hops().count(), 2);
/// # Ok::<(), zigzag_bcm::BcmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetPath {
    procs: Vec<ProcessId>,
}

impl NetPath {
    /// Creates a path from a process sequence.
    ///
    /// # Errors
    ///
    /// Returns [`BcmError::InvalidPath`] if the sequence is empty or has two
    /// equal adjacent entries (self-loop hop).
    pub fn new(procs: Vec<ProcessId>) -> Result<Self, BcmError> {
        if procs.is_empty() {
            return Err(BcmError::InvalidPath {
                detail: "empty process sequence".into(),
            });
        }
        for w in procs.windows(2) {
            if w[0] == w[1] {
                return Err(BcmError::InvalidPath {
                    detail: format!("self-loop hop at {}", w[0]),
                });
            }
        }
        Ok(NetPath { procs })
    }

    /// The singleton path `[p]`.
    pub fn singleton(p: ProcessId) -> Self {
        NetPath { procs: vec![p] }
    }

    /// Number of processes on the path (`d`), at least 1.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Paths are never empty; this always returns `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the path is a singleton `[i]` (zero hops).
    pub fn is_singleton(&self) -> bool {
        self.procs.len() == 1
    }

    /// First process on the path.
    pub fn first(&self) -> ProcessId {
        self.procs[0]
    }

    /// Last process on the path.
    pub fn last(&self) -> ProcessId {
        *self.procs.last().expect("paths are non-empty")
    }

    /// The underlying process sequence.
    pub fn procs(&self) -> &[ProcessId] {
        &self.procs
    }

    /// Iterator over the hops (channels) of the path.
    pub fn hops(&self) -> impl Iterator<Item = Channel> + '_ {
        self.procs.windows(2).map(|w| Channel::new(w[0], w[1]))
    }

    /// Composition `p ∘ q` of two paths where `p.last() == q.first()`
    /// (paper §2.1): `[i_1, …, i_k, j] ∘ [j, h_1, …, h_m]`.
    ///
    /// # Errors
    ///
    /// Returns [`BcmError::InvalidPath`] if the endpoints do not match.
    pub fn compose(&self, other: &NetPath) -> Result<NetPath, BcmError> {
        if self.last() != other.first() {
            return Err(BcmError::InvalidPath {
                detail: format!(
                    "cannot compose: path ends at {} but next starts at {}",
                    self.last(),
                    other.first()
                ),
            });
        }
        let mut procs = self.procs.clone();
        procs.extend_from_slice(&other.procs[1..]);
        Ok(NetPath { procs })
    }

    /// Appends a single hop to `next`, returning the extended path.
    ///
    /// # Errors
    ///
    /// Returns [`BcmError::InvalidPath`] if `next` equals the current last
    /// process.
    pub fn extended(&self, next: ProcessId) -> Result<NetPath, BcmError> {
        if self.last() == next {
            return Err(BcmError::InvalidPath {
                detail: format!("self-loop hop at {next}"),
            });
        }
        let mut procs = self.procs.clone();
        procs.push(next);
        Ok(NetPath { procs })
    }

    /// The prefix consisting of the first `k` processes (`1 <= k <= len`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > self.len()`.
    pub fn prefix(&self, k: usize) -> NetPath {
        assert!(
            k >= 1 && k <= self.procs.len(),
            "prefix length out of range"
        );
        NetPath {
            procs: self.procs[..k].to_vec(),
        }
    }

    /// The suffix starting at position `k` (`0 <= k < len`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn suffix(&self, k: usize) -> NetPath {
        assert!(k < self.procs.len(), "suffix start out of range");
        NetPath {
            procs: self.procs[k..].to_vec(),
        }
    }

    /// The reversed sequence (note: the reversed path exists in `Net` only
    /// if all reversed channels do).
    pub fn reversed(&self) -> NetPath {
        let mut procs = self.procs.clone();
        procs.reverse();
        NetPath { procs }
    }

    /// Checks that every hop is a channel of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`BcmError::MissingChannel`] on the first missing hop.
    pub fn validate_in(&self, net: &Network) -> Result<(), BcmError> {
        for hop in self.hops() {
            if !net.has_channel(hop.from, hop.to) {
                return Err(BcmError::MissingChannel {
                    from: hop.from,
                    to: hop.to,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for NetPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (k, p) in self.procs.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> NetPath {
        NetPath::new(ids.iter().map(|&i| ProcessId::new(i)).collect()).unwrap()
    }

    #[test]
    fn construction_rules() {
        assert!(NetPath::new(vec![]).is_err());
        assert!(NetPath::new(vec![ProcessId::new(0), ProcessId::new(0)]).is_err());
        let s = NetPath::singleton(ProcessId::new(3));
        assert!(s.is_singleton());
        assert_eq!(s.first(), s.last());
        assert!(!s.is_empty());
    }

    #[test]
    fn composition() {
        let pq = p(&[0, 1]).compose(&p(&[1, 2, 3])).unwrap();
        assert_eq!(pq, p(&[0, 1, 2, 3]));
        assert!(p(&[0, 1]).compose(&p(&[2, 3])).is_err());
        // Composing with a singleton is the identity.
        let q = p(&[0, 1]);
        assert_eq!(
            q.compose(&NetPath::singleton(ProcessId::new(1))).unwrap(),
            q
        );
    }

    #[test]
    fn prefixes_suffixes_hops() {
        let q = p(&[0, 1, 2]);
        assert_eq!(q.prefix(2), p(&[0, 1]));
        assert_eq!(q.suffix(1), p(&[1, 2]));
        assert_eq!(q.hops().count(), 2);
        assert_eq!(q.reversed(), p(&[2, 1, 0]));
        assert_eq!(q.extended(ProcessId::new(3)).unwrap(), p(&[0, 1, 2, 3]));
        assert!(q.extended(ProcessId::new(2)).is_err());
        assert_eq!(q.to_string(), "[p0,p1,p2]");
    }

    #[test]
    fn validate_against_network() {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_channel(i, j, 1, 1).unwrap();
        let ctx = b.build().unwrap();
        assert!(p(&[0, 1]).validate_in(ctx.network()).is_ok());
        assert!(p(&[1, 0]).validate_in(ctx.network()).is_err());
    }

    #[test]
    #[should_panic(expected = "prefix length out of range")]
    fn prefix_zero_panics() {
        let _ = p(&[0, 1]).prefix(0);
    }
}
