//! A lossless, dependency-free text codec for recorded runs.
//!
//! Experiments produce [`Run`]s worth keeping — counterexamples found by
//! fuzzing, slow/fast construction witnesses, regression fixtures. The
//! codec round-trips a run (context included) through a line-oriented
//! format that diffs well under version control:
//!
//! ```text
//! zigzag-run v1
//! horizon 40
//! proc 0 C
//! proc 1 A
//! chan 0 1 2 5
//! node 0 1 3            # proc index time
//! recv 0 1 e0
//! act 0 1 send_go
//! ext 0 go              # id name (placement comes from recv lines)
//! msg 0 0 1 1 5 . . .   # id src-proc src-idx dst scheduled [dst-idx dtime]
//! ```
//!
//! Decoding replays the events through [`RunBuilder`] in the engine's
//! canonical `(time, process)` order, so a decoded run is structurally
//! *identical* (`==`) to the original for every run produced by the
//! simulator or the construction engines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::builder::RunBuilder;
use crate::error::BcmError;
use crate::event::Receipt;
use crate::message::MessageId;
use crate::net::{Network, ProcessId};
use crate::run::{NodeId, Run};
use crate::stream::{ReceiptEvent, RunEvent, SendEvent};
use crate::time::Time;

fn bad(line_no: usize, detail: impl Into<String>) -> BcmError {
    BcmError::IllegalRun {
        detail: format!("codec: line {line_no}: {}", detail.into()),
    }
}

fn bad_event(detail: impl Into<String>) -> BcmError {
    BcmError::IllegalRun {
        detail: format!("event codec: {}", detail.into()),
    }
}

/// Escapes a name into a single whitespace-free token: `%` and every
/// whitespace character are percent-encoded byte-wise (`%XX`), and the
/// empty string becomes the marker `%.` so no token is ever empty. Names
/// escaped this way survive `split_whitespace` tokenization in any
/// line-oriented format (the event log, session snapshots, spec lines).
pub fn escape_token(s: &str) -> String {
    if s.is_empty() {
        return "%.".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        if ch == '%' || ch.is_whitespace() {
            let mut buf = [0u8; 4];
            for b in ch.encode_utf8(&mut buf).bytes() {
                let _ = write!(out, "%{b:02x}");
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// Inverts [`escape_token`].
///
/// # Errors
///
/// Returns [`BcmError::IllegalRun`] on a dangling or non-hex escape, or
/// if the decoded bytes are not valid UTF-8.
pub fn unescape_token(tok: &str) -> Result<String, BcmError> {
    if tok == "%." {
        return Ok(String::new());
    }
    let mut out = Vec::with_capacity(tok.len());
    let bytes = tok.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| bad_event(format!("dangling escape in {tok:?}")))?;
            let hex = std::str::from_utf8(hex).map_err(|_| bad_event("non-ASCII escape"))?;
            let b = u8::from_str_radix(hex, 16)
                .map_err(|_| bad_event(format!("bad escape %{hex} in {tok:?}")))?;
            out.push(b);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| bad_event(format!("escape of {tok:?} is not UTF-8")))
}

/// Encodes one [`RunEvent`] as a single `ev` line (no trailing newline):
///
/// ```text
/// ev <proc> <time> <nr> <receipt>... <ns> <to> <deliver_at>... <na> <action>...
/// ```
///
/// Receipt tokens are `m<id>` (stream-scoped message) or `e<name>`
/// ([`escape_token`]-escaped external); action tokens are escaped names.
/// The three counts make the record self-delimiting and let the decoder
/// validate claimed lengths against the actual token supply.
pub fn encode_event(ev: &RunEvent) -> String {
    let mut out = String::with_capacity(32);
    let _ = write!(
        out,
        "ev {} {} {}",
        ev.proc.index(),
        ev.time.ticks(),
        ev.receipts.len()
    );
    for r in &ev.receipts {
        match r {
            ReceiptEvent::Message(m) => {
                let _ = write!(out, " m{}", m.index());
            }
            ReceiptEvent::External(name) => {
                let _ = write!(out, " e{}", escape_token(name));
            }
        }
    }
    let _ = write!(out, " {}", ev.sends.len());
    for s in &ev.sends {
        let _ = write!(out, " {} {}", s.to.index(), s.deliver_at.ticks());
    }
    let _ = write!(out, " {}", ev.actions.len());
    for a in &ev.actions {
        let _ = write!(out, " {}", escape_token(a));
    }
    out
}

/// Decodes one `ev` line produced by [`encode_event`].
///
/// Every claimed count is validated against the tokens actually present
/// before that section is read, and the line must be fully consumed — a
/// torn or tampered record fails loudly instead of decoding to a
/// different event.
///
/// # Errors
///
/// Returns [`BcmError::IllegalRun`] on any malformed record.
pub fn decode_event(line: &str) -> Result<RunEvent, BcmError> {
    fn take<'a>(it: &mut std::vec::IntoIter<&'a str>, what: &str) -> Result<&'a str, BcmError> {
        it.next()
            .ok_or_else(|| bad_event(format!("truncated record: missing {what}")))
    }
    fn num(t: &str, what: &str) -> Result<u64, BcmError> {
        t.parse()
            .map_err(|_| bad_event(format!("bad {what} {t:?}")))
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    let mut it = toks.into_iter();
    if take(&mut it, "tag")? != "ev" {
        return Err(bad_event("record does not start with \"ev\""));
    }
    let proc = ProcessId::new(num(take(&mut it, "proc")?, "proc")? as u32);
    let time = Time::new(num(take(&mut it, "time")?, "time")?);

    let nr = num(take(&mut it, "receipt count")?, "receipt count")? as usize;
    if nr > it.len() {
        return Err(bad_event(format!(
            "claimed {nr} receipts but only {} tokens remain",
            it.len()
        )));
    }
    let mut receipts = Vec::with_capacity(nr);
    for _ in 0..nr {
        let t = take(&mut it, "receipt")?;
        if let Some(m) = t.strip_prefix('m') {
            receipts.push(ReceiptEvent::Message(MessageId::new(
                num(m, "message id")? as u32
            )));
        } else if let Some(e) = t.strip_prefix('e') {
            receipts.push(ReceiptEvent::External(unescape_token(e)?));
        } else {
            return Err(bad_event(format!("bad receipt token {t:?}")));
        }
    }

    let ns = num(take(&mut it, "send count")?, "send count")? as usize;
    if ns > it.len() / 2 {
        return Err(bad_event(format!(
            "claimed {ns} sends but only {} tokens remain",
            it.len()
        )));
    }
    let mut sends = Vec::with_capacity(ns);
    for _ in 0..ns {
        let to = ProcessId::new(num(take(&mut it, "send target")?, "send target")? as u32);
        let deliver_at = Time::new(num(take(&mut it, "delivery time")?, "delivery time")?);
        sends.push(SendEvent { to, deliver_at });
    }

    let na = num(take(&mut it, "action count")?, "action count")? as usize;
    if na > it.len() {
        return Err(bad_event(format!(
            "claimed {na} actions but only {} tokens remain",
            it.len()
        )));
    }
    let mut actions = Vec::with_capacity(na);
    for _ in 0..na {
        actions.push(unescape_token(take(&mut it, "action")?)?);
    }
    if it.len() != 0 {
        return Err(bad_event(format!(
            "{} trailing tokens after a complete record",
            it.len()
        )));
    }
    Ok(RunEvent {
        proc,
        time,
        receipts,
        sends,
        actions,
    })
}

/// Encodes a run (with its context) into the `zigzag-run v1` text format.
pub fn encode(run: &Run) -> String {
    let net = run.context().network();
    let bounds = run.context().bounds();
    let mut out = String::new();
    let _ = writeln!(out, "zigzag-run v1");
    let _ = writeln!(out, "horizon {}", run.horizon().ticks());
    for p in net.processes() {
        let _ = writeln!(out, "proc {} {}", p.index(), net.name(p));
    }
    for ch in net.channels() {
        let cb = bounds.get(*ch).expect("recorded channels bounded");
        let _ = writeln!(
            out,
            "chan {} {} {} {}",
            ch.from.index(),
            ch.to.index(),
            cb.lower(),
            cb.upper()
        );
    }
    for rec in run.nodes() {
        if rec.id().is_initial() {
            continue;
        }
        let _ = writeln!(
            out,
            "node {} {} {}",
            rec.id().proc().index(),
            rec.id().index(),
            rec.time().ticks()
        );
        for r in rec.receipts() {
            match r {
                Receipt::Internal(m) => {
                    let _ = writeln!(
                        out,
                        "recv {} {} m{}",
                        rec.id().proc().index(),
                        rec.id().index(),
                        m.index()
                    );
                }
                Receipt::External(e) => {
                    let _ = writeln!(
                        out,
                        "recv {} {} e{}",
                        rec.id().proc().index(),
                        rec.id().index(),
                        e.index()
                    );
                }
            }
        }
        for a in rec.actions() {
            let _ = writeln!(
                out,
                "act {} {} {}",
                rec.id().proc().index(),
                rec.id().index(),
                a.name()
            );
        }
    }
    for e in run.externals() {
        let _ = writeln!(out, "ext {} {}", e.id().index(), e.name());
    }
    for m in run.messages() {
        let (didx, dtime) = match m.delivery() {
            Some(d) => (d.node.index().to_string(), d.time.ticks().to_string()),
            None => (".".into(), ".".into()),
        };
        let _ = writeln!(
            out,
            "msg {} {} {} {} {} {} {} {}",
            m.id().index(),
            m.src().proc().index(),
            m.src().index(),
            m.channel().to.index(),
            m.sent_at().ticks(),
            m.scheduled_at().ticks(),
            didx,
            dtime
        );
    }
    out
}

#[derive(Debug, Default)]
struct NodeSpec {
    time: u64,
    receipts: Vec<String>,
    actions: Vec<String>,
}

/// Decodes a `zigzag-run v1` document back into a [`Run`].
///
/// # Errors
///
/// Returns [`BcmError::IllegalRun`] on malformed input, or if the event
/// order cannot be replayed canonically (runs hand-built in a
/// non-chronological order may not round-trip; everything the simulator
/// and the construction engines produce does).
pub fn decode(text: &str) -> Result<Run, BcmError> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(bad(1, "empty document"));
    };
    if header.trim() != "zigzag-run v1" {
        return Err(bad(1, format!("bad header {header:?}")));
    }

    let mut horizon: Option<u64> = None;
    let mut procs: Vec<(usize, String)> = Vec::new();
    let mut chans: Vec<(usize, usize, u64, u64)> = Vec::new();
    let mut nodes: BTreeMap<(usize, u32), NodeSpec> = BTreeMap::new();
    let mut exts: BTreeMap<usize, String> = BTreeMap::new();
    #[allow(clippy::type_complexity)]
    let mut msgs: Vec<(usize, usize, u32, usize, u64, u64, Option<(u32, u64)>)> = Vec::new();

    for (ln, raw) in lines {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let kind = it.next().expect("non-empty line");
        let rest: Vec<&str> = it.collect();
        let num = |s: &str| -> Result<u64, BcmError> {
            s.parse()
                .map_err(|_| bad(line_no, format!("bad number {s:?}")))
        };
        match kind {
            "horizon" => {
                horizon = Some(num(rest
                    .first()
                    .ok_or_else(|| bad(line_no, "missing horizon"))?)?);
            }
            "proc" => {
                if rest.len() < 2 {
                    return Err(bad(line_no, "proc needs index and name"));
                }
                procs.push((num(rest[0])? as usize, rest[1..].join(" ")));
            }
            "chan" => {
                if rest.len() != 4 {
                    return Err(bad(line_no, "chan needs from to L U"));
                }
                chans.push((
                    num(rest[0])? as usize,
                    num(rest[1])? as usize,
                    num(rest[2])?,
                    num(rest[3])?,
                ));
            }
            "node" => {
                if rest.len() != 3 {
                    return Err(bad(line_no, "node needs proc index time"));
                }
                let key = (num(rest[0])? as usize, num(rest[1])? as u32);
                nodes.entry(key).or_default().time = num(rest[2])?;
            }
            "recv" => {
                if rest.len() != 3 {
                    return Err(bad(line_no, "recv needs proc index ref"));
                }
                let key = (num(rest[0])? as usize, num(rest[1])? as u32);
                nodes
                    .get_mut(&key)
                    .ok_or_else(|| bad(line_no, "recv before node"))?
                    .receipts
                    .push(rest[2].to_string());
            }
            "act" => {
                if rest.len() < 3 {
                    return Err(bad(line_no, "act needs proc index name"));
                }
                let key = (num(rest[0])? as usize, num(rest[1])? as u32);
                nodes
                    .get_mut(&key)
                    .ok_or_else(|| bad(line_no, "act before node"))?
                    .actions
                    .push(rest[2..].join(" "));
            }
            "ext" => {
                if rest.len() < 2 {
                    return Err(bad(line_no, "ext needs id name"));
                }
                exts.insert(num(rest[0])? as usize, rest[1..].join(" "));
            }
            "msg" => {
                if rest.len() != 8 {
                    return Err(bad(line_no, "msg needs 8 fields"));
                }
                let delivery = if rest[6] == "." {
                    None
                } else {
                    Some((num(rest[6])? as u32, num(rest[7])?))
                };
                msgs.push((
                    num(rest[0])? as usize,
                    num(rest[1])? as usize,
                    num(rest[2])? as u32,
                    num(rest[3])? as usize,
                    num(rest[4])?,
                    num(rest[5])?,
                    delivery,
                ));
            }
            other => return Err(bad(line_no, format!("unknown record {other:?}"))),
        }
    }

    // Rebuild the context.
    let mut nb = Network::builder();
    procs.sort_by_key(|(i, _)| *i);
    for (k, (i, name)) in procs.iter().enumerate() {
        if *i != k {
            return Err(bad(0, "proc indices must be dense and ascending"));
        }
        nb.add_process(name.clone());
    }
    for &(f, t, l, u) in &chans {
        nb.add_channel(ProcessId::new(f as u32), ProcessId::new(t as u32), l, u)?;
    }
    let ctx = nb.build()?;
    let horizon = Time::new(horizon.ok_or_else(|| bad(0, "missing horizon"))?);
    let mut rb = RunBuilder::new(ctx, horizon);

    // Replay in canonical (time, process) order, mirroring the engine.
    msgs.sort_by_key(|m| m.0);
    let msgs_by_src: BTreeMap<(usize, u32), Vec<usize>> = {
        let mut map: BTreeMap<(usize, u32), Vec<usize>> = BTreeMap::new();
        for (k, m) in msgs.iter().enumerate() {
            map.entry((m.1, m.2)).or_default().push(k);
        }
        map
    };
    let mut order: Vec<(u64, usize, u32)> = nodes
        .iter()
        .map(|(&(p, i), spec)| (spec.time, p, i))
        .collect();
    order.sort();
    let mut next_ext = 0usize;
    for (time, p, i) in order {
        let node = rb.add_node(ProcessId::new(p as u32), Time::new(time))?;
        if node != NodeId::new(ProcessId::new(p as u32), i) {
            return Err(bad(0, format!("non-dense node index {i} for process {p}")));
        }
        let spec = &nodes[&(p, i)];
        for r in &spec.receipts {
            if let Some(m) = r.strip_prefix('m') {
                let id: usize = m.parse().map_err(|_| bad(0, format!("bad msg ref {r}")))?;
                rb.deliver(crate::message::MessageId::new(id as u32), node)?;
            } else if let Some(e) = r.strip_prefix('e') {
                let id: usize = e.parse().map_err(|_| bad(0, format!("bad ext ref {r}")))?;
                if id != next_ext {
                    return Err(bad(0, "external ids out of canonical order"));
                }
                let name = exts
                    .get(&id)
                    .ok_or_else(|| bad(0, format!("missing ext record {id}")))?;
                rb.add_external(node, name.clone())?;
                next_ext += 1;
            } else {
                return Err(bad(0, format!("bad receipt ref {r:?}")));
            }
        }
        for a in &spec.actions {
            rb.act(node, a.clone())?;
        }
        // Issue this node's sends in recorded id order.
        if let Some(ids) = msgs_by_src.get(&(p, i)) {
            for &k in ids {
                let (id, _, _, dst, sent, scheduled, _) = msgs[k];
                if sent != time {
                    return Err(bad(
                        0,
                        format!("msg {id} send time disagrees with its node"),
                    ));
                }
                let got = rb.send(node, ProcessId::new(dst as u32), Time::new(scheduled))?;
                if got.index() != id {
                    return Err(bad(0, format!("msg ids out of canonical order at {id}")));
                }
            }
        }
    }
    if next_ext != exts.len() {
        return Err(bad(0, "dangling ext records"));
    }
    Ok(rb.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::Ffip;
    use crate::scheduler::RandomScheduler;
    use crate::sim::{SimConfig, Simulator};
    use crate::validate::{validate_run, Strictness};

    fn sample(seed: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 1, 4).unwrap();
        b.add_bidirectional(j, k, 2, 3).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(25)));
        sim.external(Time::new(1), i, "kick");
        sim.external(Time::new(4), k, "other kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        for seed in 0..10 {
            let run = sample(seed);
            let text = encode(&run);
            let back = decode(&text).unwrap();
            assert_eq!(run, back, "seed {seed}: round trip changed the run");
            validate_run(&back, Strictness::Strict).unwrap();
            // Idempotent: encode(decode(x)) == x.
            assert_eq!(encode(&back), text);
        }
    }

    #[test]
    fn names_with_spaces_and_comments_survive() {
        let run = sample(3);
        let mut text = encode(&run);
        text.push_str("\n# trailing comment\n\n");
        let back = decode(&text).unwrap();
        assert_eq!(run, back);
        assert!(text.contains("ext 1 other kick"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(decode("").is_err());
        assert!(decode("not a run").is_err());
        assert!(decode("zigzag-run v1\n").is_err()); // missing horizon
        assert!(decode("zigzag-run v1\nhorizon 5\nbogus 1 2\n").is_err());
        assert!(decode("zigzag-run v1\nhorizon 5\nproc 0 a\nrecv 0 1 m0\n").is_err());
        assert!(decode("zigzag-run v1\nhorizon 5\nproc 0 a\nchan 0 0 1 2\n").is_err());
        // Tampered message id ordering.
        let run = sample(0);
        let tampered = encode(&run).replace("msg 0 ", "msg 7 ");
        assert!(decode(&tampered).is_err());
    }

    #[test]
    fn event_records_round_trip_and_tokens_escape() {
        use crate::stream::RunCursor;
        let run = sample(5);
        for ev in RunCursor::new(&run).collect_events() {
            let line = encode_event(&ev);
            assert!(!line.contains('\n'), "records are single lines");
            assert_eq!(decode_event(&line).unwrap(), ev);
        }
        for name in ["", "two words", "tab\tand\nnewline", "100% weird %.", "ü ñ"] {
            let tok = escape_token(name);
            assert!(!tok.is_empty() && !tok.chars().any(char::is_whitespace));
            assert_eq!(unescape_token(&tok).unwrap(), name);
        }
    }

    #[test]
    fn hostile_event_records_are_rejected() {
        use crate::stream::{RunEvent, SendEvent};
        let ev = RunEvent {
            proc: ProcessId::new(1),
            time: Time::new(7),
            receipts: vec![
                crate::stream::ReceiptEvent::External("go now".into()),
                crate::stream::ReceiptEvent::Message(crate::message::MessageId::new(3)),
            ],
            sends: vec![SendEvent {
                to: ProcessId::new(0),
                deliver_at: Time::new(9),
            }],
            actions: vec!["fire".into()],
        };
        let line = encode_event(&ev);
        assert_eq!(decode_event(&line).unwrap(), ev);
        // Overclaimed counts fail before the data is trusted.
        assert!(decode_event(&line.replacen(" 2 ", " 4000000 ", 1)).is_err());
        assert!(decode_event("ev 0 1 0 99999999 0").is_err());
        assert!(decode_event("ev 0 1 0 0 18446744073709551615").is_err());
        // Torn tails, trailing garbage, bad escapes, wrong tag.
        assert!(decode_event(line.rsplit_once(' ').unwrap().0).is_err());
        assert!(decode_event(&format!("{line} extra")).is_err());
        assert!(decode_event("ev 0 1 1 e%zz 0 0").is_err());
        assert!(
            decode_event("ev 0 1 1 e%ff 0 0").is_err(),
            "non-UTF-8 escape"
        );
        assert!(decode_event("ev 0 1 1 x3 0 0").is_err());
        assert!(decode_event("msg 0 1").is_err());
        assert!(decode_event("").is_err());
    }

    #[test]
    fn constructed_runs_round_trip_too() {
        use crate::builder::RunBuilder;
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 1, 3).unwrap();
        let ctx = b.build().unwrap();
        let mut rb = RunBuilder::new(ctx, Time::new(10));
        let ni = rb.add_node(i, Time::new(2)).unwrap();
        rb.add_external(ni, "go").unwrap();
        rb.act(ni, "a").unwrap();
        let m = rb.send(ni, j, Time::new(4)).unwrap();
        let nj = rb.add_node(j, Time::new(4)).unwrap();
        rb.deliver(m, nj).unwrap();
        let _beyond = rb.send(nj, i, Time::new(12)).unwrap(); // in flight
        let run = rb.finish();
        let back = decode(&encode(&run)).unwrap();
        assert_eq!(run, back);
    }
}
