//! A lossless, dependency-free text codec for recorded runs.
//!
//! Experiments produce [`Run`]s worth keeping — counterexamples found by
//! fuzzing, slow/fast construction witnesses, regression fixtures. The
//! codec round-trips a run (context included) through a line-oriented
//! format that diffs well under version control:
//!
//! ```text
//! zigzag-run v1
//! horizon 40
//! proc 0 C
//! proc 1 A
//! chan 0 1 2 5
//! node 0 1 3            # proc index time
//! recv 0 1 e0
//! act 0 1 send_go
//! ext 0 go              # id name (placement comes from recv lines)
//! msg 0 0 1 1 5 . . .   # id src-proc src-idx dst scheduled [dst-idx dtime]
//! ```
//!
//! Decoding replays the events through [`RunBuilder`] in the engine's
//! canonical `(time, process)` order, so a decoded run is structurally
//! *identical* (`==`) to the original for every run produced by the
//! simulator or the construction engines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::builder::RunBuilder;
use crate::error::BcmError;
use crate::event::Receipt;
use crate::net::{Network, ProcessId};
use crate::run::{NodeId, Run};
use crate::time::Time;

fn bad(line_no: usize, detail: impl Into<String>) -> BcmError {
    BcmError::IllegalRun {
        detail: format!("codec: line {line_no}: {}", detail.into()),
    }
}

/// Encodes a run (with its context) into the `zigzag-run v1` text format.
pub fn encode(run: &Run) -> String {
    let net = run.context().network();
    let bounds = run.context().bounds();
    let mut out = String::new();
    let _ = writeln!(out, "zigzag-run v1");
    let _ = writeln!(out, "horizon {}", run.horizon().ticks());
    for p in net.processes() {
        let _ = writeln!(out, "proc {} {}", p.index(), net.name(p));
    }
    for ch in net.channels() {
        let cb = bounds.get(*ch).expect("recorded channels bounded");
        let _ = writeln!(
            out,
            "chan {} {} {} {}",
            ch.from.index(),
            ch.to.index(),
            cb.lower(),
            cb.upper()
        );
    }
    for rec in run.nodes() {
        if rec.id().is_initial() {
            continue;
        }
        let _ = writeln!(
            out,
            "node {} {} {}",
            rec.id().proc().index(),
            rec.id().index(),
            rec.time().ticks()
        );
        for r in rec.receipts() {
            match r {
                Receipt::Internal(m) => {
                    let _ = writeln!(
                        out,
                        "recv {} {} m{}",
                        rec.id().proc().index(),
                        rec.id().index(),
                        m.index()
                    );
                }
                Receipt::External(e) => {
                    let _ = writeln!(
                        out,
                        "recv {} {} e{}",
                        rec.id().proc().index(),
                        rec.id().index(),
                        e.index()
                    );
                }
            }
        }
        for a in rec.actions() {
            let _ = writeln!(
                out,
                "act {} {} {}",
                rec.id().proc().index(),
                rec.id().index(),
                a.name()
            );
        }
    }
    for e in run.externals() {
        let _ = writeln!(out, "ext {} {}", e.id().index(), e.name());
    }
    for m in run.messages() {
        let (didx, dtime) = match m.delivery() {
            Some(d) => (d.node.index().to_string(), d.time.ticks().to_string()),
            None => (".".into(), ".".into()),
        };
        let _ = writeln!(
            out,
            "msg {} {} {} {} {} {} {} {}",
            m.id().index(),
            m.src().proc().index(),
            m.src().index(),
            m.channel().to.index(),
            m.sent_at().ticks(),
            m.scheduled_at().ticks(),
            didx,
            dtime
        );
    }
    out
}

#[derive(Debug, Default)]
struct NodeSpec {
    time: u64,
    receipts: Vec<String>,
    actions: Vec<String>,
}

/// Decodes a `zigzag-run v1` document back into a [`Run`].
///
/// # Errors
///
/// Returns [`BcmError::IllegalRun`] on malformed input, or if the event
/// order cannot be replayed canonically (runs hand-built in a
/// non-chronological order may not round-trip; everything the simulator
/// and the construction engines produce does).
pub fn decode(text: &str) -> Result<Run, BcmError> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(bad(1, "empty document"));
    };
    if header.trim() != "zigzag-run v1" {
        return Err(bad(1, format!("bad header {header:?}")));
    }

    let mut horizon: Option<u64> = None;
    let mut procs: Vec<(usize, String)> = Vec::new();
    let mut chans: Vec<(usize, usize, u64, u64)> = Vec::new();
    let mut nodes: BTreeMap<(usize, u32), NodeSpec> = BTreeMap::new();
    let mut exts: BTreeMap<usize, String> = BTreeMap::new();
    #[allow(clippy::type_complexity)]
    let mut msgs: Vec<(usize, usize, u32, usize, u64, u64, Option<(u32, u64)>)> = Vec::new();

    for (ln, raw) in lines {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let kind = it.next().expect("non-empty line");
        let rest: Vec<&str> = it.collect();
        let num = |s: &str| -> Result<u64, BcmError> {
            s.parse()
                .map_err(|_| bad(line_no, format!("bad number {s:?}")))
        };
        match kind {
            "horizon" => {
                horizon = Some(num(rest
                    .first()
                    .ok_or_else(|| bad(line_no, "missing horizon"))?)?);
            }
            "proc" => {
                if rest.len() < 2 {
                    return Err(bad(line_no, "proc needs index and name"));
                }
                procs.push((num(rest[0])? as usize, rest[1..].join(" ")));
            }
            "chan" => {
                if rest.len() != 4 {
                    return Err(bad(line_no, "chan needs from to L U"));
                }
                chans.push((
                    num(rest[0])? as usize,
                    num(rest[1])? as usize,
                    num(rest[2])?,
                    num(rest[3])?,
                ));
            }
            "node" => {
                if rest.len() != 3 {
                    return Err(bad(line_no, "node needs proc index time"));
                }
                let key = (num(rest[0])? as usize, num(rest[1])? as u32);
                nodes.entry(key).or_default().time = num(rest[2])?;
            }
            "recv" => {
                if rest.len() != 3 {
                    return Err(bad(line_no, "recv needs proc index ref"));
                }
                let key = (num(rest[0])? as usize, num(rest[1])? as u32);
                nodes
                    .get_mut(&key)
                    .ok_or_else(|| bad(line_no, "recv before node"))?
                    .receipts
                    .push(rest[2].to_string());
            }
            "act" => {
                if rest.len() < 3 {
                    return Err(bad(line_no, "act needs proc index name"));
                }
                let key = (num(rest[0])? as usize, num(rest[1])? as u32);
                nodes
                    .get_mut(&key)
                    .ok_or_else(|| bad(line_no, "act before node"))?
                    .actions
                    .push(rest[2..].join(" "));
            }
            "ext" => {
                if rest.len() < 2 {
                    return Err(bad(line_no, "ext needs id name"));
                }
                exts.insert(num(rest[0])? as usize, rest[1..].join(" "));
            }
            "msg" => {
                if rest.len() != 8 {
                    return Err(bad(line_no, "msg needs 8 fields"));
                }
                let delivery = if rest[6] == "." {
                    None
                } else {
                    Some((num(rest[6])? as u32, num(rest[7])?))
                };
                msgs.push((
                    num(rest[0])? as usize,
                    num(rest[1])? as usize,
                    num(rest[2])? as u32,
                    num(rest[3])? as usize,
                    num(rest[4])?,
                    num(rest[5])?,
                    delivery,
                ));
            }
            other => return Err(bad(line_no, format!("unknown record {other:?}"))),
        }
    }

    // Rebuild the context.
    let mut nb = Network::builder();
    procs.sort_by_key(|(i, _)| *i);
    for (k, (i, name)) in procs.iter().enumerate() {
        if *i != k {
            return Err(bad(0, "proc indices must be dense and ascending"));
        }
        nb.add_process(name.clone());
    }
    for &(f, t, l, u) in &chans {
        nb.add_channel(ProcessId::new(f as u32), ProcessId::new(t as u32), l, u)?;
    }
    let ctx = nb.build()?;
    let horizon = Time::new(horizon.ok_or_else(|| bad(0, "missing horizon"))?);
    let mut rb = RunBuilder::new(ctx, horizon);

    // Replay in canonical (time, process) order, mirroring the engine.
    msgs.sort_by_key(|m| m.0);
    let msgs_by_src: BTreeMap<(usize, u32), Vec<usize>> = {
        let mut map: BTreeMap<(usize, u32), Vec<usize>> = BTreeMap::new();
        for (k, m) in msgs.iter().enumerate() {
            map.entry((m.1, m.2)).or_default().push(k);
        }
        map
    };
    let mut order: Vec<(u64, usize, u32)> = nodes
        .iter()
        .map(|(&(p, i), spec)| (spec.time, p, i))
        .collect();
    order.sort();
    let mut next_ext = 0usize;
    for (time, p, i) in order {
        let node = rb.add_node(ProcessId::new(p as u32), Time::new(time))?;
        if node != NodeId::new(ProcessId::new(p as u32), i) {
            return Err(bad(0, format!("non-dense node index {i} for process {p}")));
        }
        let spec = &nodes[&(p, i)];
        for r in &spec.receipts {
            if let Some(m) = r.strip_prefix('m') {
                let id: usize = m.parse().map_err(|_| bad(0, format!("bad msg ref {r}")))?;
                rb.deliver(crate::message::MessageId::new(id as u32), node)?;
            } else if let Some(e) = r.strip_prefix('e') {
                let id: usize = e.parse().map_err(|_| bad(0, format!("bad ext ref {r}")))?;
                if id != next_ext {
                    return Err(bad(0, "external ids out of canonical order"));
                }
                let name = exts
                    .get(&id)
                    .ok_or_else(|| bad(0, format!("missing ext record {id}")))?;
                rb.add_external(node, name.clone())?;
                next_ext += 1;
            } else {
                return Err(bad(0, format!("bad receipt ref {r:?}")));
            }
        }
        for a in &spec.actions {
            rb.act(node, a.clone())?;
        }
        // Issue this node's sends in recorded id order.
        if let Some(ids) = msgs_by_src.get(&(p, i)) {
            for &k in ids {
                let (id, _, _, dst, sent, scheduled, _) = msgs[k];
                if sent != time {
                    return Err(bad(
                        0,
                        format!("msg {id} send time disagrees with its node"),
                    ));
                }
                let got = rb.send(node, ProcessId::new(dst as u32), Time::new(scheduled))?;
                if got.index() != id {
                    return Err(bad(0, format!("msg ids out of canonical order at {id}")));
                }
            }
        }
    }
    if next_ext != exts.len() {
        return Err(bad(0, "dangling ext records"));
    }
    Ok(rb.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::Ffip;
    use crate::scheduler::RandomScheduler;
    use crate::sim::{SimConfig, Simulator};
    use crate::validate::{validate_run, Strictness};

    fn sample(seed: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 1, 4).unwrap();
        b.add_bidirectional(j, k, 2, 3).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(25)));
        sim.external(Time::new(1), i, "kick");
        sim.external(Time::new(4), k, "other kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        for seed in 0..10 {
            let run = sample(seed);
            let text = encode(&run);
            let back = decode(&text).unwrap();
            assert_eq!(run, back, "seed {seed}: round trip changed the run");
            validate_run(&back, Strictness::Strict).unwrap();
            // Idempotent: encode(decode(x)) == x.
            assert_eq!(encode(&back), text);
        }
    }

    #[test]
    fn names_with_spaces_and_comments_survive() {
        let run = sample(3);
        let mut text = encode(&run);
        text.push_str("\n# trailing comment\n\n");
        let back = decode(&text).unwrap();
        assert_eq!(run, back);
        assert!(text.contains("ext 1 other kick"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(decode("").is_err());
        assert!(decode("not a run").is_err());
        assert!(decode("zigzag-run v1\n").is_err()); // missing horizon
        assert!(decode("zigzag-run v1\nhorizon 5\nbogus 1 2\n").is_err());
        assert!(decode("zigzag-run v1\nhorizon 5\nproc 0 a\nrecv 0 1 m0\n").is_err());
        assert!(decode("zigzag-run v1\nhorizon 5\nproc 0 a\nchan 0 0 1 2\n").is_err());
        // Tampered message id ordering.
        let run = sample(0);
        let tampered = encode(&run).replace("msg 0 ", "msg 7 ");
        assert!(decode(&tampered).is_err());
    }

    #[test]
    fn constructed_runs_round_trip_too() {
        use crate::builder::RunBuilder;
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 1, 3).unwrap();
        let ctx = b.build().unwrap();
        let mut rb = RunBuilder::new(ctx, Time::new(10));
        let ni = rb.add_node(i, Time::new(2)).unwrap();
        rb.add_external(ni, "go").unwrap();
        rb.act(ni, "a").unwrap();
        let m = rb.send(ni, j, Time::new(4)).unwrap();
        let nj = rb.add_node(j, Time::new(4)).unwrap();
        rb.deliver(m, nj).unwrap();
        let _beyond = rb.send(nj, i, Time::new(12)).unwrap(); // in flight
        let run = rb.finish();
        let back = decode(&encode(&run)).unwrap();
        assert_eq!(run, back);
    }
}
