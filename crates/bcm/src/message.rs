//! Message records: internal channel messages and spontaneous external
//! inputs (`E` in paper §2.1).

use std::fmt;

use crate::net::{Channel, ProcessId};
use crate::run::NodeId;
use crate::time::Time;

/// Identifier of an internal message within a [`crate::Run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MessageId(u32);

impl MessageId {
    /// Creates a message identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        MessageId(index)
    }

    /// The dense index of this message.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of an external input within a [`crate::Run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ExternalId(u32);

impl ExternalId {
    /// Creates an external-input identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        ExternalId(index)
    }

    /// The dense index of this external input.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExternalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Where and when a message was delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The receiving basic node.
    pub node: NodeId,
    /// Delivery time.
    pub time: Time,
}

/// A single internal message of a run.
///
/// In the flooding full-information protocol every message carries the
/// sender's complete local history; because a [`crate::Run`] records the
/// whole execution, that content is implicit — the receiver's view is
/// exactly the causal past of its receive node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageRecord {
    id: MessageId,
    src: NodeId,
    channel: Channel,
    sent_at: Time,
    scheduled_at: Time,
    delivery: Option<Delivery>,
}

impl MessageRecord {
    /// Creates a message record. Used by the simulator and by run
    /// constructions in the causality layer.
    pub fn new(
        id: MessageId,
        src: NodeId,
        channel: Channel,
        sent_at: Time,
        scheduled_at: Time,
    ) -> Self {
        MessageRecord {
            id,
            src,
            channel,
            sent_at,
            scheduled_at,
            delivery: None,
        }
    }

    /// The message identifier.
    pub fn id(&self) -> MessageId {
        self.id
    }

    /// The basic node at which the message was sent.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The channel `(i, j)` the message travels on.
    pub fn channel(&self) -> Channel {
        self.channel
    }

    /// The sending time `t_µ`.
    pub fn sent_at(&self) -> Time {
        self.sent_at
    }

    /// The delivery time chosen by the environment (it may lie beyond the
    /// recorded horizon, in which case [`MessageRecord::delivery`] is
    /// `None`).
    pub fn scheduled_at(&self) -> Time {
        self.scheduled_at
    }

    /// The delivery, if it happened within the recorded horizon.
    pub fn delivery(&self) -> Option<Delivery> {
        self.delivery
    }

    /// Whether the message was delivered within the recorded horizon.
    pub fn is_delivered(&self) -> bool {
        self.delivery.is_some()
    }

    /// Marks the message as delivered. Used by the simulator.
    pub fn set_delivery(&mut self, node: NodeId, time: Time) {
        self.delivery = Some(Delivery { node, time });
    }
}

/// A spontaneous external input (an element of `E`) delivered to a process.
///
/// External deliveries are what get the event-driven system moving: the
/// paper's "go" trigger `µ_go` is an external input to process `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalRecord {
    id: ExternalId,
    name: String,
    proc: ProcessId,
    time: Time,
    node: NodeId,
}

impl ExternalRecord {
    /// Creates an external-input record. Used by the simulator.
    pub fn new(
        id: ExternalId,
        name: impl Into<String>,
        proc: ProcessId,
        time: Time,
        node: NodeId,
    ) -> Self {
        ExternalRecord {
            id,
            name: name.into(),
            proc,
            time,
            node,
        }
    }

    /// The external-input identifier.
    pub fn id(&self) -> ExternalId {
        self.id
    }

    /// The application-level name of the input (e.g. `"go"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The receiving process.
    pub fn proc(&self) -> ProcessId {
        self.proc
    }

    /// The delivery time (always `> 0`).
    pub fn time(&self) -> Time {
        self.time
    }

    /// The basic node that observed the input.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_record_lifecycle() {
        let src = NodeId::new(ProcessId::new(0), 1);
        let ch = Channel::new(ProcessId::new(0), ProcessId::new(1));
        let mut m = MessageRecord::new(MessageId::new(7), src, ch, Time::new(3), Time::new(5));
        assert_eq!(m.id().index(), 7);
        assert_eq!(m.src(), src);
        assert_eq!(m.sent_at(), Time::new(3));
        assert_eq!(m.scheduled_at(), Time::new(5));
        assert!(!m.is_delivered());
        let dst = NodeId::new(ProcessId::new(1), 1);
        m.set_delivery(dst, Time::new(5));
        assert_eq!(m.delivery().unwrap().node, dst);
        assert_eq!(m.delivery().unwrap().time, Time::new(5));
    }

    #[test]
    fn external_record_accessors() {
        let node = NodeId::new(ProcessId::new(2), 1);
        let e = ExternalRecord::new(
            ExternalId::new(0),
            "go",
            ProcessId::new(2),
            Time::new(4),
            node,
        );
        assert_eq!(e.name(), "go");
        assert_eq!(e.proc(), ProcessId::new(2));
        assert_eq!(e.time(), Time::new(4));
        assert_eq!(e.node(), node);
        assert_eq!(e.id().to_string(), "e0");
    }

    #[test]
    fn id_display() {
        assert_eq!(MessageId::new(3).to_string(), "m3");
    }
}
