//! Run validation: certifies that a recorded structure is a legal prefix of
//! a run in `R(P, γ)` for the flooding full-information protocol.
//!
//! Validation is what lets the theorem experiments trust *constructed* runs
//! (slow runs, fast runs, replayed runs): a construction is only accepted
//! if the validator agrees it obeys the model.

use std::collections::BTreeSet;

use crate::error::BcmError;
use crate::event::Receipt;
use crate::run::Run;
use crate::time::Time;

/// How to treat messages that are still undelivered at the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// Every message whose delivery deadline `t_µ + U` falls within the
    /// horizon must have been delivered. This certifies the prefix extends
    /// to a legal infinite run with no further constraints.
    Strict,
    /// Undelivered messages are tolerated (their deliveries are taken to
    /// happen beyond the recorded prefix). Delivered messages must still
    /// respect their bounds. Used for runs constructed from timing
    /// functions whose node set is an explicit finite subset (see the
    /// discussion in DESIGN.md §5).
    Prefix,
}

fn illegal(detail: impl Into<String>) -> BcmError {
    BcmError::IllegalRun {
        detail: detail.into(),
    }
}

/// Validates a run prefix.
///
/// Checks, in order:
/// 1. timeline shape: node ids dense, times strictly increasing, initial
///    nodes at time 0 with no receipts/sends/actions, non-initial nodes
///    have at least one receipt and time `>= 1`;
/// 2. message records: channels exist, send times match sender nodes,
///    senders list their sends, scheduled/actual delivery times within
///    `[t_µ + L, t_µ + U]`, receivers list matching receipts;
/// 3. receipt consistency: every internal receipt is the delivery of a
///    matching message, every external receipt matches an external record
///    with time `>= 1`;
/// 4. FFIP flooding: every non-initial node sent exactly one message per
///    out-neighbor;
/// 5. mandatory delivery per the chosen [`Strictness`].
///
/// # Errors
///
/// Returns [`BcmError::IllegalRun`] describing the first violation found.
pub fn validate_run(run: &Run, strictness: Strictness) -> Result<(), BcmError> {
    let net = run.context().network();
    let bounds = run.context().bounds();
    let horizon = run.horizon();

    // 1. Timeline shape.
    for p in net.processes() {
        let tl = run.timeline(p);
        if tl.is_empty() {
            return Err(illegal(format!("process {p} has no initial node")));
        }
        for (k, rec) in tl.iter().enumerate() {
            if rec.id().proc() != p || rec.id().index() as usize != k {
                return Err(illegal(format!(
                    "node id {} inconsistent with timeline position {k} of {p}",
                    rec.id()
                )));
            }
            if rec.time() > horizon {
                return Err(illegal(format!("{} beyond horizon {horizon}", rec.id())));
            }
            if k == 0 {
                if !rec.time().is_zero() {
                    return Err(illegal(format!("initial node of {p} not at time 0")));
                }
                if !rec.receipts().is_empty() || !rec.sent().is_empty() || !rec.actions().is_empty()
                {
                    return Err(illegal(format!(
                        "initial node of {p} has receipts/sends/actions"
                    )));
                }
            } else {
                if rec.time() <= tl[k - 1].time() {
                    return Err(illegal(format!(
                        "times not strictly increasing at {}",
                        rec.id()
                    )));
                }
                if rec.receipts().is_empty() {
                    return Err(illegal(format!(
                        "non-initial node {} observed no receipt (processes are event-driven)",
                        rec.id()
                    )));
                }
            }
        }
    }

    // 2. Message records.
    for (k, m) in run.messages().iter().enumerate() {
        if m.id().index() != k {
            return Err(illegal(format!(
                "message id {} at table position {k}",
                m.id()
            )));
        }
        let ch = m.channel();
        let cb = bounds
            .get(ch)
            .ok_or_else(|| illegal(format!("message {} on unknown channel {ch}", m.id())))?;
        let src = run
            .node(m.src())
            .ok_or_else(|| illegal(format!("message {} sent by unknown node", m.id())))?;
        if src.id().proc() != ch.from {
            return Err(illegal(format!(
                "message {} sender {} not on channel {ch}",
                m.id(),
                m.src()
            )));
        }
        if src.time() != m.sent_at() {
            return Err(illegal(format!(
                "message {} send time mismatch with sender node",
                m.id()
            )));
        }
        if !src.sent().contains(&m.id()) {
            return Err(illegal(format!(
                "sender {} does not list message {}",
                m.src(),
                m.id()
            )));
        }
        let window_ok = |t: Time| cb.permits((t - m.sent_at()).max(0) as u64) && t > m.sent_at();
        if !window_ok(m.scheduled_at()) {
            return Err(BcmError::DeliveryOutOfBounds {
                from: ch.from,
                to: ch.to,
                sent_at: m.sent_at(),
                delivered_at: m.scheduled_at(),
            });
        }
        match m.delivery() {
            Some(d) => {
                if !window_ok(d.time) {
                    return Err(BcmError::DeliveryOutOfBounds {
                        from: ch.from,
                        to: ch.to,
                        sent_at: m.sent_at(),
                        delivered_at: d.time,
                    });
                }
                let dst = run.node(d.node).ok_or_else(|| {
                    illegal(format!("message {} delivered to unknown node", m.id()))
                })?;
                if d.node.proc() != ch.to {
                    return Err(illegal(format!(
                        "message {} delivered to {} off-channel {ch}",
                        m.id(),
                        d.node
                    )));
                }
                if dst.time() != d.time {
                    return Err(illegal(format!(
                        "message {} delivery time mismatch with receiver node",
                        m.id()
                    )));
                }
                if !dst.receipts().contains(&Receipt::Internal(m.id())) {
                    return Err(illegal(format!(
                        "receiver {} does not list receipt of {}",
                        d.node,
                        m.id()
                    )));
                }
            }
            None => {
                if strictness == Strictness::Strict && m.sent_at() + cb.upper() <= horizon {
                    return Err(illegal(format!(
                        "message {} overdue: sent at {} on {ch} (U = {}), undelivered at horizon {horizon}",
                        m.id(),
                        m.sent_at(),
                        cb.upper()
                    )));
                }
            }
        }
    }

    // 3. Receipt consistency.
    let mut seen_externals: BTreeSet<usize> = BTreeSet::new();
    for rec in run.nodes() {
        for receipt in rec.receipts() {
            match receipt {
                Receipt::Internal(m) => {
                    if m.index() >= run.messages().len() {
                        return Err(illegal(format!(
                            "receipt of unknown message at {}",
                            rec.id()
                        )));
                    }
                    let mr = run.message(*m);
                    match mr.delivery() {
                        Some(d) if d.node == rec.id() => {}
                        _ => {
                            return Err(illegal(format!(
                                "node {} lists receipt of {} not delivered there",
                                rec.id(),
                                m
                            )))
                        }
                    }
                }
                Receipt::External(e) => {
                    if e.index() >= run.externals().len() {
                        return Err(illegal(format!(
                            "receipt of unknown external at {}",
                            rec.id()
                        )));
                    }
                    let er = run.external(*e);
                    if er.node() != rec.id()
                        || er.time() != rec.time()
                        || er.proc() != rec.id().proc()
                    {
                        return Err(illegal(format!(
                            "external {} record inconsistent at {}",
                            e,
                            rec.id()
                        )));
                    }
                    if er.time().is_zero() {
                        return Err(illegal("external delivered at time 0".to_string()));
                    }
                    seen_externals.insert(e.index());
                }
            }
        }
    }
    if seen_externals.len() != run.externals().len() {
        return Err(illegal("dangling external record".to_string()));
    }

    // 4. FFIP flooding.
    for rec in run.nodes() {
        if rec.id().is_initial() {
            continue;
        }
        let mut dests: Vec<_> = rec
            .sent()
            .iter()
            .map(|&m| run.message(m).channel().to)
            .collect();
        dests.sort_unstable();
        let expected = net.out_neighbors(rec.id().proc());
        if dests != expected {
            return Err(illegal(format!(
                "node {} violates FFIP flooding: sent to {:?}, expected {:?}",
                rec.id(),
                dests,
                expected
            )));
        }
    }

    Ok(())
}

#[cfg(test)]
impl crate::run::NodeRecord {
    fn set_time_for_test(&mut self, t: Time) {
        // Test-only tampering helper; reconstruct through public parts.
        let mut fresh = crate::run::NodeRecord::new(self.id(), t);
        for r in self.receipts() {
            fresh.push_receipt(*r);
        }
        for m in self.sent() {
            fresh.push_sent(*m);
        }
        for a in self.actions() {
            fresh.push_action(a.clone());
        }
        *self = fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::protocols::Ffip;
    use crate::run::NodeId;
    use crate::scheduler::{EagerScheduler, RandomScheduler};
    use crate::sim::{SimConfig, Simulator};

    fn simulated(seed: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 1, 4).unwrap();
        b.add_bidirectional(j, k, 2, 3).unwrap();
        b.add_channel(i, k, 1, 9).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(1), i, "kick");
        sim.external(Time::new(7), k, "kick2");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn simulated_runs_are_strictly_legal() {
        for seed in 0..20 {
            let run = simulated(seed);
            validate_run(&run, Strictness::Strict).unwrap();
            validate_run(&run, Strictness::Prefix).unwrap();
        }
    }

    #[test]
    fn tampered_delivery_is_caught() {
        let mut run = simulated(3);
        // Move a node's time: breaks message consistency or monotonicity.
        let victim = run
            .messages()
            .iter()
            .find_map(|m| m.delivery().map(|d| d.node))
            .unwrap();
        let t = run.time(victim).unwrap();
        run.node_mut(victim_mut_id(victim))
            .set_time_for_test(t + 1000);
        assert!(validate_run(&run, Strictness::Strict).is_err());
    }

    fn victim_mut_id(n: NodeId) -> NodeId {
        n
    }

    #[test]
    fn empty_skeleton_is_legal() {
        let mut b = Network::builder();
        let _ = b.add_process("solo");
        let ctx = b.build().unwrap();
        let run = Run::skeleton(ctx, Time::new(5));
        validate_run(&run, Strictness::Strict).unwrap();
    }

    #[test]
    fn overdue_message_fails_strict_but_passes_prefix() {
        // Horizon cuts off delivery: simulate with tiny horizon so the
        // first flood is scheduled beyond it.
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_channel(i, j, 5, 6).unwrap();
        b.add_channel(j, i, 5, 6).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(12)));
        sim.external(Time::new(1), i, "kick");
        let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
        // The message sent at t=6 by j arrives at t=11 <= 12; the next one
        // sent at t=11 is due at 17 > 12: strict still OK.
        validate_run(&run, Strictness::Strict).unwrap();

        // Now forge a run where a due message is undelivered.
        let mut run2 = run.clone();
        run2.set_horizon(Time::new(40));
        assert!(validate_run(&run2, Strictness::Strict).is_err());
        validate_run(&run2, Strictness::Prefix).unwrap();
    }
}
