//! Protocols: deterministic functions of the local state (paper §2.1).
//!
//! Communication is handled by the engine itself, which always floods in
//! the style of the **flooding full-information protocol (FFIP)**: whenever
//! a process receives a message it immediately sends its entire local state
//! to all of its neighbors. FFIPs are general protocols for the bcm model
//! (any protocol can be simulated on top of one), so application logic only
//! chooses which *local actions* to perform at each node.

use std::fmt;

use crate::view::View;

/// A named local action requested by a protocol (e.g. the paper's `a`, `b`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Action {
    name: String,
}

impl Action {
    /// Creates an action with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Action { name: name.into() }
    }

    /// The action's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Consumes the action, returning its name.
    pub fn into_name(self) -> String {
        self.name
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The application layer of a protocol `P = (P_1, …, P_n)`.
///
/// `on_event` is invoked exactly when a process transitions to a new basic
/// node — i.e. when it receives one or more messages (internal or external).
/// It must be a deterministic function of the [`View`] (the local state);
/// the engine calls it for every process from a single `Protocol` value, so
/// per-process mutable state should be keyed by `view.proc()` if needed.
///
/// Processes are event-driven and never act spontaneously; in particular
/// `on_event` is never called for initial nodes (time 0).
pub trait Protocol {
    /// Decide which local actions to perform at the newly created node.
    fn on_event(&mut self, view: &View<'_>) -> Vec<Action>;
}

impl<F> Protocol for F
where
    F: FnMut(&View<'_>) -> Vec<Action>,
{
    fn on_event(&mut self, view: &View<'_>) -> Vec<Action> {
        self(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_accessors() {
        let a = Action::new("go");
        assert_eq!(a.name(), "go");
        assert_eq!(a.to_string(), "go");
        assert_eq!(a.clone().into_name(), "go");
    }
}
