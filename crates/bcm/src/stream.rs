//! Event streams over runs: grow a run one observed event at a time.
//!
//! The paper's whole point is that timing knowledge is extracted *as a
//! run unfolds* — a node of the system exists the moment its receipts are
//! delivered, not when a full-run transcript is closed. This module gives
//! runs that shape:
//!
//! * a [`RunEvent`] is one basic node's worth of system activity — the
//!   receipts that create the node, the FFIP sends it emits (with the
//!   environment's committed delivery times), and its local actions;
//! * a [`RunCursor`] replays a recorded [`Run`] as an ordered event feed
//!   without cloning the run: events borrow nothing and are emitted in
//!   global `(time, process)` order, exactly the order the simulator
//!   created the nodes;
//! * a [`StreamingRun`] grows a [`Run`] from such a feed, append-only.
//!
//! Feeding a cursor's events into a streaming run reconstructs the source
//! run **exactly** (same node records, message table, externals, times) —
//! the reconstruction invariant the prefix-differential oracle pins. The
//! incremental knowledge engine (`zigzag_core::incremental`) consumes
//! this feed to keep its analyses current after every append.
//!
//! # Message identity
//!
//! Events reference messages by *stream-scoped* [`MessageId`]s: the `k`-th
//! send emitted by the feed is message `k`. For simulator-produced runs
//! this numbering coincides with the run's own (the simulator also
//! assigns ids in node-creation order); for hand-built runs the cursor
//! renumbers transparently.

use std::collections::HashMap;

use crate::builder::RunBuilder;
use crate::error::BcmError;
use crate::event::Receipt;
use crate::message::MessageId;
use crate::net::{Context, ProcessId};
use crate::run::{NodeId, Run};
use crate::time::Time;

/// One receipt of a [`RunEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiptEvent {
    /// A spontaneous external input with this name arrived.
    External(String),
    /// An internal message arrived. The id is stream-scoped: the `k`-th
    /// [`SendEvent`] of the feed is message `k`.
    Message(MessageId),
}

/// One message sent by the event's node, with the environment's committed
/// delivery time (which may lie beyond any recording horizon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendEvent {
    /// The receiving process.
    pub to: ProcessId,
    /// The committed delivery time.
    pub deliver_at: Time,
}

/// One basic node's worth of system activity: the unit of the event feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunEvent {
    /// The process whose timeline grows by one node.
    pub proc: ProcessId,
    /// The node's time (strictly increasing per timeline).
    pub time: Time,
    /// The receipts that create the node, in observation order.
    pub receipts: Vec<ReceiptEvent>,
    /// FFIP sends emitted at the node, in emission order (this order
    /// defines the stream-scoped message numbering).
    pub sends: Vec<SendEvent>,
    /// Local actions performed at the node.
    pub actions: Vec<String>,
}

/// Replays a recorded run as an ordered event feed; see the
/// [module docs](self).
#[derive(Debug)]
pub struct RunCursor<'r> {
    run: &'r Run,
    /// Non-initial nodes in global `(time, process)` order.
    order: Vec<NodeId>,
    pos: usize,
    /// Source-run message id → stream-scoped id, filled as sends are
    /// emitted (identity for simulator-produced runs).
    renumber: HashMap<MessageId, MessageId>,
    emitted_sends: u32,
}

impl<'r> RunCursor<'r> {
    /// Positions a cursor at the start of `run`'s event feed.
    pub fn new(run: &'r Run) -> Self {
        let mut order: Vec<NodeId> = run
            .nodes()
            .filter(|rec| !rec.id().is_initial())
            .map(|rec| rec.id())
            .collect();
        order.sort_by_key(|&n| (run.time(n).expect("recorded node"), n.proc()));
        RunCursor {
            run,
            order,
            pos: 0,
            renumber: HashMap::new(),
            emitted_sends: 0,
        }
    }

    /// The run being replayed.
    pub fn run(&self) -> &'r Run {
        self.run
    }

    /// Number of events already emitted.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of events not yet emitted.
    pub fn remaining(&self) -> usize {
        self.order.len() - self.pos
    }

    /// Emits the next event of the feed, or `None` when the run is fully
    /// replayed.
    #[allow(clippy::should_implement_trait)]
    pub fn next_event(&mut self) -> Option<RunEvent> {
        let node = *self.order.get(self.pos)?;
        self.pos += 1;
        let rec = self.run.node(node).expect("ordered nodes are recorded");
        let receipts = rec
            .receipts()
            .iter()
            .map(|r| match r {
                Receipt::External(e) => {
                    ReceiptEvent::External(self.run.external(*e).name().to_string())
                }
                Receipt::Internal(m) => ReceiptEvent::Message(
                    *self
                        .renumber
                        .get(m)
                        .expect("sends precede deliveries in (time, proc) order"),
                ),
            })
            .collect();
        let sends = rec
            .sent()
            .iter()
            .map(|&m| {
                self.renumber.insert(m, MessageId::new(self.emitted_sends));
                self.emitted_sends += 1;
                let mr = self.run.message(m);
                SendEvent {
                    to: mr.channel().to,
                    deliver_at: mr.scheduled_at(),
                }
            })
            .collect();
        let actions = rec.actions().iter().map(|a| a.name().to_string()).collect();
        Some(RunEvent {
            proc: node.proc(),
            time: rec.time(),
            receipts,
            sends,
            actions,
        })
    }

    /// Drains the whole feed into a vector.
    pub fn collect_events(mut self) -> Vec<RunEvent> {
        let mut out = Vec::with_capacity(self.remaining());
        while let Some(ev) = self.next_event() {
            out.push(ev);
        }
        out
    }
}

impl Iterator for RunCursor<'_> {
    type Item = RunEvent;

    fn next(&mut self) -> Option<RunEvent> {
        self.next_event()
    }
}

/// A run grown append-only from an event feed; see the [module docs](self).
#[derive(Debug)]
pub struct StreamingRun {
    rb: RunBuilder,
    events: usize,
}

impl StreamingRun {
    /// Starts from the skeleton run (initial nodes only) of `context`.
    pub fn new(context: impl Into<std::sync::Arc<Context>>, horizon: Time) -> Self {
        StreamingRun {
            rb: RunBuilder::new(context, horizon),
            events: 0,
        }
    }

    /// Resumes streaming on top of an already-recorded run — the
    /// snapshot-restore path: a durable-store recovery decodes a run
    /// prefix and continues appending the log tail to it. The event count
    /// resumes at the number of non-initial nodes (one event grew each),
    /// and stream-scoped message numbering continues from the run's
    /// message table, so a feed whose ids coincide with the run's (every
    /// canonical-order feed) appends exactly as if never interrupted.
    pub fn adopt(run: Run) -> Self {
        let events = run.nodes().filter(|rec| !rec.id().is_initial()).count();
        StreamingRun {
            rb: RunBuilder::adopt(run),
            events,
        }
    }

    /// The run as grown so far — a genuine [`Run`] prefix, usable by every
    /// batch analysis without cloning.
    pub fn run(&self) -> &Run {
        self.rb.run()
    }

    /// Number of events appended.
    pub fn event_count(&self) -> usize {
        self.events
    }

    /// Appends one event: creates the node, wires its receipts (stream-id
    /// deliveries must reference earlier sends), records its sends and
    /// actions. Returns the created node's id.
    ///
    /// # Errors
    ///
    /// Fails if the event is inconsistent with the run so far (time not
    /// increasing on the timeline, unknown process or channel, delivery of
    /// an unknown or already-delivered message). On error the run may
    /// retain a partially applied node; callers treating errors as fatal
    /// (all current ones) need no rollback.
    pub fn append(&mut self, ev: &RunEvent) -> Result<NodeId, BcmError> {
        let node = self.rb.add_node(ev.proc, ev.time)?;
        for r in &ev.receipts {
            match r {
                ReceiptEvent::External(name) => {
                    self.rb.add_external(node, name.clone())?;
                }
                ReceiptEvent::Message(m) => {
                    self.rb.deliver(*m, node)?;
                }
            }
        }
        for s in &ev.sends {
            self.rb.send(node, s.to, s.deliver_at)?;
        }
        for a in &ev.actions {
            self.rb.act(node, a.clone())?;
        }
        self.events += 1;
        Ok(node)
    }

    /// Finalizes the grown run.
    pub fn finish(self) -> Run {
        self.rb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::protocols::Ffip;
    use crate::scheduler::RandomScheduler;
    use crate::sim::{SimConfig, Simulator};
    use crate::validate::{validate_run, Strictness};

    fn tri_run(seed: u64, horizon: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(horizon)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn replay_reconstructs_the_run_exactly() {
        for seed in 0..6 {
            let run = tri_run(seed, 35);
            let mut cursor = RunCursor::new(&run);
            let mut stream = StreamingRun::new(run.context_arc(), run.horizon());
            assert_eq!(cursor.remaining(), run.node_count() - 3);
            while let Some(ev) = cursor.next_event() {
                stream.append(&ev).unwrap();
            }
            assert_eq!(cursor.remaining(), 0);
            assert_eq!(stream.event_count(), cursor.position());
            let rebuilt = stream.finish();
            assert_eq!(rebuilt, run, "seed {seed}: replay diverged from source");
            validate_run(&rebuilt, Strictness::Strict).unwrap();
        }
    }

    #[test]
    fn every_prefix_is_a_valid_run() {
        let run = tri_run(3, 30);
        let mut cursor = RunCursor::new(&run);
        let mut stream = StreamingRun::new(run.context_arc(), run.horizon());
        while let Some(ev) = cursor.next_event() {
            let node = stream.append(&ev).unwrap();
            assert_eq!(stream.run().time(node), Some(ev.time));
            validate_run(stream.run(), Strictness::Prefix).unwrap();
        }
    }

    #[test]
    fn cursor_renumbers_hand_built_runs() {
        // Build a run whose send order disagrees with (time, proc) node
        // order: the later node's message is recorded first.
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 1, 3).unwrap();
        let ctx = b.build().unwrap();
        let mut rb = RunBuilder::new(ctx, Time::new(12));
        let ni = rb.add_node(i, Time::new(5)).unwrap();
        rb.add_external(ni, "late_kick").unwrap();
        let m_late = rb.send(ni, j, Time::new(7)).unwrap();
        let nj = rb.add_node(j, Time::new(2)).unwrap();
        rb.add_external(nj, "early_kick").unwrap();
        let m_early = rb.send(nj, i, Time::new(9)).unwrap();
        let nj2 = rb.add_node(j, Time::new(7)).unwrap();
        rb.deliver(m_late, nj2).unwrap();
        let ni2 = rb.add_node(i, Time::new(9)).unwrap();
        rb.deliver(m_early, ni2).unwrap();
        let run = rb.finish();

        let mut cursor = RunCursor::new(&run);
        let mut stream = StreamingRun::new(run.context_arc(), run.horizon());
        let mut nodes = Vec::new();
        while let Some(ev) = cursor.next_event() {
            nodes.push(stream.append(&ev).unwrap());
        }
        // Emission order is (time, proc): j@2, i@5, j@7, i@9.
        assert_eq!(nodes, vec![nj, ni, nj2, ni2]);
        let rebuilt = stream.finish();
        // Message *content* is identical even though ids are renumbered.
        assert_eq!(rebuilt.node_count(), run.node_count());
        for rec in run.nodes() {
            assert_eq!(rebuilt.time(rec.id()), Some(rec.time()));
            let b = rebuilt.node(rec.id()).unwrap();
            assert_eq!(b.receipts().len(), rec.receipts().len());
            assert_eq!(b.sent().len(), rec.sent().len());
        }
        let sched: Vec<Time> = run.messages().iter().map(|m| m.scheduled_at()).collect();
        let mut resched: Vec<Time> = rebuilt
            .messages()
            .iter()
            .map(|m| m.scheduled_at())
            .collect();
        resched.sort();
        let mut sorted = sched;
        sorted.sort();
        assert_eq!(resched, sorted);
    }

    #[test]
    fn adoption_resumes_a_feed_exactly() {
        for seed in 0..4 {
            let run = tri_run(seed, 35);
            let events = RunCursor::new(&run).collect_events();
            for cut in 0..=events.len() {
                let mut first = StreamingRun::new(run.context_arc(), run.horizon());
                for ev in &events[..cut] {
                    first.append(ev).unwrap();
                }
                let mut resumed = StreamingRun::adopt(first.finish());
                assert_eq!(resumed.event_count(), cut);
                for ev in &events[cut..] {
                    resumed.append(ev).unwrap();
                }
                assert_eq!(
                    resumed.finish(),
                    run,
                    "seed {seed}: adoption at event {cut} diverged"
                );
            }
        }
    }

    #[test]
    fn append_rejects_inconsistent_events() {
        let run = tri_run(0, 25);
        let events = RunCursor::new(&run).collect_events();
        let mut stream = StreamingRun::new(run.context_arc(), run.horizon());
        // Delivering a message nobody sent yet fails.
        let bad = RunEvent {
            proc: events[0].proc,
            time: events[0].time,
            receipts: vec![ReceiptEvent::Message(MessageId::new(7))],
            sends: Vec::new(),
            actions: Vec::new(),
        };
        assert!(stream.append(&bad).is_err());
        // Cursor doubles as an iterator.
        let collected: Vec<RunEvent> = RunCursor::new(&run).collect();
        assert_eq!(collected, events);
    }
}
