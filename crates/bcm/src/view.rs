//! The clockless local view of a process at one of its nodes.
//!
//! A [`View`] is handed to [`crate::Protocol`] code whenever a process
//! transitions to a new node. It exposes exactly what the paper's model
//! allows a process to observe under a full-information protocol: the
//! *structure* of its causal past (who received what from whom, in which
//! local order) — and **no real-time information whatsoever**. There is
//! deliberately no method on `View` that returns a [`crate::Time`].

use crate::event::{ActionRecord, Receipt};
use crate::message::{ExternalId, MessageId};
use crate::net::{Context, ProcessId};
use crate::run::{NodeId, Past, Run};

/// The view of process `view.proc()` at its current node `view.node()`.
///
/// All query methods are restricted to `past(r, σ)`; asking about anything
/// else returns `None`/`false`. Protocol decisions made through a `View`
/// are therefore functions of the local state, as the model requires.
#[derive(Debug)]
pub struct View<'r> {
    run: &'r Run,
    node: NodeId,
    past: Past,
}

impl<'r> View<'r> {
    /// Creates the view of `node` in `run`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not appear in `run`.
    pub fn new(run: &'r Run, node: NodeId) -> Self {
        let past = run.past(node);
        View { run, node, past }
    }

    /// The current basic node `σ`.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The process this view belongs to.
    pub fn proc(&self) -> ProcessId {
        self.node.proc()
    }

    /// The bounded context (network + bounds). Bounds are common knowledge
    /// in the bcm model, so protocols may consult them freely.
    pub fn context(&self) -> &'r Context {
        self.run.context()
    }

    /// The causal past of the current node.
    pub fn past(&self) -> &Past {
        &self.past
    }

    /// Whether `node` is in the causal past (σ-recognized base).
    pub fn knows_node(&self, node: NodeId) -> bool {
        self.past.contains(node)
    }

    /// Receipts observed at the current node.
    pub fn current_receipts(&self) -> &'r [Receipt] {
        self.run
            .node(self.node)
            .map(|r| r.receipts())
            .unwrap_or(&[])
    }

    /// Receipts observed at `node`, if `node` is in the past.
    pub fn receipts_at(&self, node: NodeId) -> Option<&'r [Receipt]> {
        self.past
            .contains(node)
            .then(|| self.run.node(node).map(|r| r.receipts()))
            .flatten()
    }

    /// Actions performed at `node`, if `node` is in the past.
    pub fn actions_at(&self, node: NodeId) -> Option<&'r [ActionRecord]> {
        self.past
            .contains(node)
            .then(|| self.run.node(node).map(|r| r.actions()))
            .flatten()
    }

    /// The sending node of message `m`, if the send is in the past.
    ///
    /// Message headers identify their sender (and, under FFIP, the entire
    /// sending history), so this is locally observable.
    pub fn sender(&self, m: MessageId) -> Option<NodeId> {
        let src = self.run.message(m).src();
        self.past.contains(src).then_some(src)
    }

    /// Where the message `m` sent from within the past was delivered, if
    /// that delivery is itself in the past. (A process cannot observe
    /// deliveries outside its past.)
    pub fn delivery_of(&self, m: MessageId) -> Option<NodeId> {
        let rec = self.run.message(m);
        if !self.past.contains(rec.src()) {
            return None;
        }
        rec.delivery()
            .map(|d| d.node)
            .filter(|n| self.past.contains(*n))
    }

    /// Messages sent by `node` (with their destination processes), if
    /// `node` is in the past. Under FFIP every non-initial node sends to
    /// every out-neighbor, and the sends are part of the sender's history.
    pub fn sent_by(&self, node: NodeId) -> Option<Vec<(MessageId, ProcessId)>> {
        if !self.past.contains(node) {
            return None;
        }
        let rec = self.run.node(node)?;
        Some(
            rec.sent()
                .iter()
                .map(|&m| (m, self.run.message(m).channel().to))
                .collect(),
        )
    }

    /// The node of `proc` that received an external input named `name`,
    /// if that receipt is in the past.
    pub fn external_node(&self, proc: ProcessId, name: &str) -> Option<NodeId> {
        let node = self.run.external_receipt_node(proc, name)?;
        self.past.contains(node).then_some(node)
    }

    /// The name of external input `e`, if its receipt is in the past.
    pub fn external_name(&self, e: ExternalId) -> Option<&'r str> {
        let rec = self.run.external(e);
        self.past.contains(rec.node()).then(|| rec.name())
    }

    /// Whether process `self.proc()` has already performed an action named
    /// `name` at or before the current node.
    pub fn already_acted(&self, name: &str) -> bool {
        let tl = self.run.timeline(self.proc());
        tl.iter()
            .take(self.node.index() as usize + 1)
            .any(|rec| rec.actions().iter().any(|a| a.name() == name))
    }

    /// Analysis escape hatch: the underlying run.
    ///
    /// This exists so that the causality layer (`zigzag-core`) can build
    /// bounds graphs and knowledge queries for the node. Those algorithms
    /// provably consult only `past(r, σ)` plus the common-knowledge bounds;
    /// application protocol code must use the restricted queries above
    /// instead. (The property-test suite checks that knowledge decisions
    /// are invariant under changes outside the past.)
    pub fn run_for_analysis(&self) -> &'r Run {
        self.run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::protocols::Ffip;
    use crate::scheduler::EagerScheduler;
    use crate::sim::{SimConfig, Simulator};
    use crate::time::Time;

    fn relay_run() -> Run {
        // c -> a -> b line, plus c -> b direct.
        let mut b = Network::builder();
        let c = b.add_process("c");
        let a = b.add_process("a");
        let bb = b.add_process("b");
        b.add_channel(c, a, 1, 2).unwrap();
        b.add_channel(a, bb, 1, 2).unwrap();
        b.add_channel(c, bb, 5, 9).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
        sim.external(Time::new(2), c, "go");
        sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap()
    }

    #[test]
    fn view_restricts_to_past() {
        let run = relay_run();
        let c = ProcessId::new(0);
        let a = ProcessId::new(1);
        let b = ProcessId::new(2);
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let a1 = NodeId::new(a, 1);
        let view_a1 = View::new(&run, a1);
        assert_eq!(view_a1.proc(), a);
        assert!(view_a1.knows_node(sigma_c));
        assert_eq!(view_a1.external_node(c, "go"), Some(sigma_c));
        // a's first node knows nothing of b's non-initial nodes.
        assert!(!view_a1.knows_node(NodeId::new(b, 1)));
        assert!(view_a1.receipts_at(NodeId::new(b, 1)).is_none());
        // Receipt and sender inspection.
        let receipts = view_a1.current_receipts();
        assert_eq!(receipts.len(), 1);
        let m = receipts[0].internal().unwrap();
        assert_eq!(view_a1.sender(m), Some(sigma_c));
        // c's sends are visible from a (they are part of c's history).
        let sent = view_a1.sent_by(sigma_c).unwrap();
        assert_eq!(sent.len(), 2); // to a and to b
                                   // But the delivery of c's message to b is not in a1's past.
        let (m_cb, _) = sent.iter().find(|(_, d)| *d == b).copied().unwrap();
        assert!(view_a1.delivery_of(m_cb).is_none());
        assert!(!view_a1.already_acted("a"));
    }

    #[test]
    fn external_name_visibility() {
        let run = relay_run();
        let c = ProcessId::new(0);
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let view_c = View::new(&run, sigma_c);
        let e = view_c.current_receipts()[0].external().unwrap();
        assert_eq!(view_c.external_name(e), Some("go"));
        // The initial node of c has the external outside its past.
        let view_c0 = View::new(&run, NodeId::initial(c));
        assert_eq!(view_c0.external_name(e), None);
        assert_eq!(view_c0.external_node(c, "go"), None);
    }
}
