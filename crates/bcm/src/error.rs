//! Error types for the bcm model crate.

use std::fmt;

use crate::net::ProcessId;
use crate::time::Time;

/// Errors produced when building networks, simulating, or validating runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BcmError {
    /// A channel endpoint refers to a process that does not exist.
    UnknownProcess(ProcessId),
    /// A channel was declared twice.
    DuplicateChannel {
        /// Channel source.
        from: ProcessId,
        /// Channel destination.
        to: ProcessId,
    },
    /// A self-loop channel `(i, i)` was requested; the paper's network graph
    /// has channels only between distinct processes (actions that take time
    /// are modelled separately).
    SelfLoop(ProcessId),
    /// Bounds violate `1 <= L <= U`.
    InvalidBounds {
        /// Channel source.
        from: ProcessId,
        /// Channel destination.
        to: ProcessId,
        /// Declared lower bound.
        lower: u64,
        /// Declared upper bound.
        upper: u64,
    },
    /// A message was (or would be) delivered outside its channel bounds.
    DeliveryOutOfBounds {
        /// Channel source.
        from: ProcessId,
        /// Channel destination.
        to: ProcessId,
        /// When the message was sent.
        sent_at: Time,
        /// When it was delivered.
        delivered_at: Time,
    },
    /// A scheduler returned a delivery time in the past of the send.
    SchedulerMisbehaved {
        /// Explanation of the violation.
        detail: String,
    },
    /// A path mentions a channel missing from the network.
    MissingChannel {
        /// Channel source.
        from: ProcessId,
        /// Channel destination.
        to: ProcessId,
    },
    /// A process-name sequence is not a path (empty, or broken channel hop).
    InvalidPath {
        /// Explanation of the violation.
        detail: String,
    },
    /// The network has no processes.
    EmptyNetwork,
    /// Run validation failed.
    IllegalRun {
        /// Explanation of the violation.
        detail: String,
    },
    /// A referenced node does not exist in the run.
    UnknownNode {
        /// Explanation of the reference that failed.
        detail: String,
    },
    /// An external input was scheduled for a nonexistent process or at time 0
    /// (the paper's processes cannot act at time 0).
    InvalidExternal {
        /// Explanation of the violation.
        detail: String,
    },
}

impl fmt::Display for BcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BcmError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            BcmError::DuplicateChannel { from, to } => {
                write!(f, "duplicate channel ({from}, {to})")
            }
            BcmError::SelfLoop(p) => write!(f, "self-loop channel on process {p}"),
            BcmError::InvalidBounds {
                from,
                to,
                lower,
                upper,
            } => write!(
                f,
                "invalid bounds on ({from}, {to}): need 1 <= L <= U, got L={lower}, U={upper}"
            ),
            BcmError::DeliveryOutOfBounds {
                from,
                to,
                sent_at,
                delivered_at,
            } => write!(
                f,
                "delivery on ({from}, {to}) sent at {sent_at} delivered at {delivered_at} violates bounds"
            ),
            BcmError::SchedulerMisbehaved { detail } => {
                write!(f, "scheduler misbehaved: {detail}")
            }
            BcmError::MissingChannel { from, to } => {
                write!(f, "channel ({from}, {to}) is not in the network")
            }
            BcmError::InvalidPath { detail } => write!(f, "invalid network path: {detail}"),
            BcmError::EmptyNetwork => write!(f, "network has no processes"),
            BcmError::IllegalRun { detail } => write!(f, "illegal run: {detail}"),
            BcmError::UnknownNode { detail } => write!(f, "unknown node: {detail}"),
            BcmError::InvalidExternal { detail } => write!(f, "invalid external input: {detail}"),
        }
    }
}

impl std::error::Error for BcmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            BcmError::UnknownProcess(ProcessId::new(3)),
            BcmError::SelfLoop(ProcessId::new(0)),
            BcmError::EmptyNetwork,
            BcmError::IllegalRun { detail: "x".into() },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
