//! Stock protocol implementations.

use std::collections::BTreeMap;

use crate::net::ProcessId;
use crate::process::{Action, Protocol};
use crate::run::NodeId;
use crate::view::View;

/// The flooding full-information protocol with no application actions.
///
/// The engine already floods on every receipt; `Ffip` adds nothing on top.
/// This is the protocol under which the paper's knowledge characterization
/// (Theorem 4) is stated.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ffip;

impl Ffip {
    /// Creates the protocol.
    pub fn new() -> Self {
        Ffip
    }
}

impl Protocol for Ffip {
    fn on_event(&mut self, _view: &View<'_>) -> Vec<Action> {
        Vec::new()
    }
}

/// Performs scripted actions: whenever the process of a listed trigger
/// observes the trigger condition, the named action fires (once).
///
/// Triggers supported:
/// * *on external*: act at the node receiving a named external input;
/// * *on hearing from*: act at the first node whose past contains a given
///   node (e.g. "act when you learn of `σ_C`").
#[derive(Debug, Clone, Default)]
pub struct ScriptedActions {
    on_external: BTreeMap<(ProcessId, String), String>,
    on_hear: Vec<(ProcessId, NodeId, String)>,
    fired: BTreeMap<(ProcessId, String), bool>,
}

impl ScriptedActions {
    /// Creates an empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// When `proc` receives the external input `ext`, perform `action`.
    pub fn on_external(
        &mut self,
        proc: ProcessId,
        ext: impl Into<String>,
        action: impl Into<String>,
    ) -> &mut Self {
        self.on_external.insert((proc, ext.into()), action.into());
        self
    }

    /// When `proc` first has `node` in its causal past, perform `action`.
    pub fn on_hear(
        &mut self,
        proc: ProcessId,
        node: NodeId,
        action: impl Into<String>,
    ) -> &mut Self {
        self.on_hear.push((proc, node, action.into()));
        self
    }
}

impl Protocol for ScriptedActions {
    fn on_event(&mut self, view: &View<'_>) -> Vec<Action> {
        let me = view.proc();
        let mut out = Vec::new();
        for receipt in view.current_receipts() {
            if let Some(e) = receipt.external() {
                if let Some(name) = view.external_name(e) {
                    if let Some(action) = self.on_external.get(&(me, name.to_string())) {
                        let key = (me, action.clone());
                        if !self.fired.get(&key).copied().unwrap_or(false) {
                            self.fired.insert(key, true);
                            out.push(Action::new(action.clone()));
                        }
                    }
                }
            }
        }
        for (proc, node, action) in &self.on_hear {
            if *proc == me && view.knows_node(*node) {
                let key = (me, action.clone());
                if !self.fired.get(&key).copied().unwrap_or(false) {
                    self.fired.insert(key, true);
                    out.push(Action::new(action.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::scheduler::EagerScheduler;
    use crate::sim::{SimConfig, Simulator};
    use crate::time::Time;

    #[test]
    fn scripted_actions_fire_once() {
        let mut b = Network::builder();
        let c = b.add_process("c");
        let a = b.add_process("a");
        b.add_bidirectional(c, a, 1, 2).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(20)));
        sim.external(Time::new(1), c, "go");
        let mut script = ScriptedActions::new();
        script.on_external(c, "go", "send_go");
        // a acts when it hears of c's go-node; c#1 is the node receiving it.
        script.on_hear(a, NodeId::new(c, 1), "a");
        let run = sim.run(&mut script, &mut EagerScheduler).unwrap();
        let c_node = run.action_node(c, "send_go").unwrap();
        assert_eq!(c_node, NodeId::new(c, 1));
        let a_node = run.action_node(a, "a").unwrap();
        assert_eq!(a_node.proc(), a);
        // Fired exactly once despite repeated flooding.
        let count: usize = run
            .timeline(a)
            .iter()
            .map(|r| r.actions().iter().filter(|x| x.name() == "a").count())
            .sum();
        assert_eq!(count, 1);
    }
}
