//! # zigzag-bcm — the bounded communication model without clocks
//!
//! This crate implements the **bcm** model of Dan, Manohar and Moses,
//! *On Using Time Without Clocks via Zigzag Causality* (PODC 2017), §2:
//! a directed network of event-driven processes with **no clocks**, where
//! every channel `(i, j)` carries known integer bounds
//! `1 <= L_ij <= U_ij < ∞` on message transmission times.
//!
//! The crate provides:
//!
//! * [`Network`] / [`Bounds`] / [`Context`] — the time-bounded network
//!   `((Net, L, U), G_0)` in which protocols operate,
//! * [`Protocol`] implementations, most importantly the **flooding
//!   full-information protocol** ([`protocols::Ffip`]) used throughout the
//!   paper,
//! * [`Scheduler`] policies playing the role of the nondeterministic
//!   environment (eager, lazy, seeded-random, replay-driven, …),
//! * a discrete-event [`Simulator`] producing recorded [`Run`]s,
//! * run [`validate`](validate::validate_run)-ion certifying that a run is a
//!   legal member of `R(P, γ)`,
//! * causality queries on runs (`happens-before`, `past(r, σ)`, boundary
//!   nodes) and ASCII space–time [`diagram`]s,
//! * event [`stream`]s: replay recorded runs as ordered event feeds and
//!   grow runs append-only — the input of the incremental knowledge
//!   engine (`zigzag_core::incremental`),
//! * deterministic data-parallel helpers ([`par`]) used by the sweep and
//!   experiment layers to fan `(parameter, seed)` grids across threads
//!   with order-preserving results.
//!
//! Time is identified with the naturals (`u64` ticks); a process observes
//! **only** the events delivered to it, never the time — exactly as in the
//! paper's clockless model.
//!
//! ## Example
//!
//! ```
//! use zigzag_bcm::{Context, Network, Simulator, SimConfig, Time, ProcessId};
//! use zigzag_bcm::scheduler::EagerScheduler;
//! use zigzag_bcm::protocols::Ffip;
//!
//! # fn main() -> Result<(), zigzag_bcm::BcmError> {
//! // A three-process relay C -> A, C -> B with bounds [2,5] and [7,9].
//! let mut net = Network::builder();
//! let c = net.add_process("C");
//! let a = net.add_process("A");
//! let b = net.add_process("B");
//! net.add_channel(c, a, 2, 5)?;
//! net.add_channel(c, b, 7, 9)?;
//! let context = net.build()?;
//!
//! let mut sim = Simulator::new(context, SimConfig::with_horizon(Time::new(40)));
//! sim.external(Time::new(3), c, "go");
//! let run = sim.run(&mut Ffip::new(), &mut EagerScheduler)?;
//! assert!(run.timeline(a).len() > 1); // A heard from C
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod builder;
pub mod codec;
pub mod diagram;
pub mod error;
pub mod event;
pub mod message;
pub mod net;
pub mod par;
pub mod path;
pub mod process;
pub mod protocols;
pub mod run;
pub mod scheduler;
pub mod sim;
pub mod stats;
pub mod stream;
pub mod time;
pub mod topology;
pub mod validate;
pub mod view;

pub use bounds::{Bounds, ChannelBounds};
pub use error::BcmError;
pub use event::{ActionRecord, Receipt};
pub use message::{ExternalId, ExternalRecord, MessageId, MessageRecord};
pub use net::{Channel, Context, Network, NetworkBuilder, ProcessId};
pub use path::NetPath;
pub use process::{Action, Protocol};
pub use run::{NodeId, NodeRecord, Run};
pub use scheduler::Scheduler;
pub use sim::{SimConfig, Simulator};
pub use stats::RunStats;
pub use stream::{ReceiptEvent, RunCursor, RunEvent, SendEvent, StreamingRun};
pub use time::Time;
pub use view::View;
