//! ASCII space–time diagrams of runs, in the style of the paper's figures.
//!
//! Each process gets one row; columns are time ticks. Markers:
//! `o` a basic node, `E` a node receiving an external input, letters for
//! actions (first letter of the action name, uppercased). A message table
//! below the grid lists sends/deliveries.

use std::fmt::Write as _;

use crate::run::Run;
use crate::time::Time;

/// Renders the whole run (up to its horizon).
pub fn render(run: &Run) -> String {
    render_window(run, Time::ZERO, run.horizon())
}

/// Renders the time window `[from, to]` of the run.
///
/// # Panics
///
/// Panics if `from > to`.
pub fn render_window(run: &Run, from: Time, to: Time) -> String {
    assert!(from <= to, "empty diagram window");
    let net = run.context().network();
    let width = (to - from) as usize + 1;
    let name_w = net
        .processes()
        .map(|p| net.name(p).len())
        .max()
        .unwrap_or(1)
        .max(4);
    let mut out = String::new();

    // Time ruler (every 5 ticks).
    let _ = write!(out, "{:name_w$} ", "time");
    for col in 0..width {
        let t = from.ticks() + col as u64;
        if t.is_multiple_of(5) {
            let s = t.to_string();
            let _ = write!(out, "{}", s.chars().next().unwrap());
        } else {
            out.push(' ');
        }
    }
    out.push('\n');

    for p in net.processes() {
        let _ = write!(out, "{:name_w$} ", net.name(p));
        let mut row = vec!['-'; width];
        for rec in run.timeline(p) {
            if rec.time() < from || rec.time() > to {
                continue;
            }
            let col = (rec.time() - from) as usize;
            let mut marker = 'o';
            if rec.receipts().iter().any(|r| r.external().is_some()) {
                marker = 'E';
            }
            if let Some(a) = rec.actions().first() {
                marker = a.name().chars().next().unwrap_or('*').to_ascii_uppercase();
            }
            row[col] = marker;
        }
        out.extend(row);
        out.push('\n');
    }

    // Message table.
    out.push('\n');
    for m in run.messages() {
        if m.sent_at() > to || m.sent_at() < from {
            continue;
        }
        let src_name = net.name(m.channel().from);
        let dst_name = net.name(m.channel().to);
        match m.delivery() {
            Some(d) => {
                let _ = writeln!(
                    out,
                    "  {}: {src_name}@{} -> {dst_name}@{}",
                    m.id(),
                    m.sent_at(),
                    d.time
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {}: {src_name}@{} -> {dst_name} (in transit, due {})",
                    m.id(),
                    m.sent_at(),
                    m.scheduled_at()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Network, ProcessId};
    use crate::protocols::ScriptedActions;
    use crate::scheduler::EagerScheduler;
    use crate::sim::{SimConfig, Simulator};

    #[test]
    fn renders_nodes_actions_and_messages() {
        let mut b = Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        b.add_bidirectional(c, a, 2, 4).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(12)));
        sim.external(Time::new(1), c, "go");
        let mut script = ScriptedActions::new();
        script.on_external(c, "go", "go");
        let run = sim.run(&mut script, &mut EagerScheduler).unwrap();
        let s = render(&run);
        assert!(s.contains("C "));
        assert!(s.contains("A "));
        assert!(s.contains("G")); // the action marker at C's go node
        assert!(s.contains("m0"));
        assert!(s.contains("->"));
        // Window rendering works too and is smaller.
        let w = render_window(&run, Time::new(0), Time::new(3));
        assert!(w.len() < s.len());
        let _ = ProcessId::new(0);
    }

    #[test]
    #[should_panic(expected = "empty diagram window")]
    fn bad_window_panics() {
        let mut b = Network::builder();
        let _ = b.add_process("X");
        let ctx = b.build().unwrap();
        let run = Run::skeleton(ctx, Time::new(3));
        let _ = render_window(&run, Time::new(2), Time::new(1));
    }
}
