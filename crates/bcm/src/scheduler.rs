//! Scheduler policies playing the role of the paper's nondeterministic
//! environment (§2.1).
//!
//! The environment may deliver a message `µ` on channel `(i, j)` at any
//! time `t` with `L_ij <= t - t_µ <= U_ij`, and *must* deliver it when
//! `t - t_µ = U_ij`. A [`Scheduler`] resolves this nondeterminism by
//! committing, at send time, to a delivery time within the window; the set
//! of runs generable this way is exactly `R(P, γ)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use crate::bounds::ChannelBounds;
use crate::net::{Channel, ProcessId};
use crate::run::{NodeId, Run};
use crate::time::Time;

/// A pending send for which the environment must choose a delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingSend {
    /// The basic node performing the send.
    pub src: NodeId,
    /// The channel the message travels on.
    pub channel: Channel,
    /// The sending time `t_µ`.
    pub sent_at: Time,
    /// The `[L, U]` bounds of the channel.
    pub bounds: ChannelBounds,
}

impl PendingSend {
    /// The earliest legal delivery time `t_µ + L`.
    pub fn earliest(&self) -> Time {
        self.sent_at + self.bounds.lower()
    }

    /// The latest legal delivery time `t_µ + U`.
    pub fn latest(&self) -> Time {
        self.sent_at + self.bounds.upper()
    }

    /// Clamps `t` into the legal delivery window.
    pub fn clamp(&self, t: Time) -> Time {
        t.max(self.earliest()).min(self.latest())
    }
}

/// The environment's delivery policy.
///
/// Implementations must return a time within `[send.earliest(),
/// send.latest()]`; the simulator verifies this and fails otherwise.
/// The partially-built run is provided so that policies may depend on
/// history (the replay and fast-run schedulers of the causality layer do).
pub trait Scheduler {
    /// Chooses the delivery time for `send`.
    fn schedule(&mut self, run: &Run, send: PendingSend) -> Time;
}

/// Delivers every message at its lower bound `t_µ + L`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EagerScheduler;

impl Scheduler for EagerScheduler {
    fn schedule(&mut self, _run: &Run, send: PendingSend) -> Time {
        send.earliest()
    }
}

/// Delivers every message at its upper bound `t_µ + U` (the unique time at
/// which delivery becomes mandatory).
#[derive(Debug, Clone, Copy, Default)]
pub struct LazyScheduler;

impl Scheduler for LazyScheduler {
    fn schedule(&mut self, _run: &Run, send: PendingSend) -> Time {
        send.latest()
    }
}

/// Delivers at `t_µ + L + round(f · (U - L))` for a fixed fraction
/// `f ∈ [0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct FractionScheduler {
    fraction: f64,
}

impl FractionScheduler {
    /// Creates the policy; `fraction` is clamped into `[0, 1]`.
    pub fn new(fraction: f64) -> Self {
        FractionScheduler {
            fraction: fraction.clamp(0.0, 1.0),
        }
    }
}

impl Scheduler for FractionScheduler {
    fn schedule(&mut self, _run: &Run, send: PendingSend) -> Time {
        let slack = send.bounds.slack() as f64;
        let extra = (slack * self.fraction).round() as u64;
        send.earliest() + extra
    }
}

/// Delivers uniformly at random within the window, from a seeded RNG
/// (deterministic for a given seed).
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates the policy from a seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn schedule(&mut self, _run: &Run, send: PendingSend) -> Time {
        let lo = send.earliest().ticks();
        let hi = send.latest().ticks();
        Time::new(self.rng.gen_range(lo..=hi))
    }
}

/// Per-channel fixed delays (clamped into bounds), with a default policy
/// for unlisted channels. Useful for building the paper's worked scenarios.
#[derive(Debug, Clone)]
pub struct PerChannelScheduler {
    delays: BTreeMap<Channel, u64>,
    default_fraction: f64,
}

impl PerChannelScheduler {
    /// Creates a policy with no per-channel entries; unlisted channels use
    /// `default_fraction` as in [`FractionScheduler`].
    pub fn new(default_fraction: f64) -> Self {
        PerChannelScheduler {
            delays: BTreeMap::new(),
            default_fraction: default_fraction.clamp(0.0, 1.0),
        }
    }

    /// Fixes the transmission delay of `channel` to `delay` ticks
    /// (clamped into the channel bounds at schedule time).
    pub fn set_delay(&mut self, channel: Channel, delay: u64) -> &mut Self {
        self.delays.insert(channel, delay);
        self
    }
}

impl Scheduler for PerChannelScheduler {
    fn schedule(&mut self, _run: &Run, send: PendingSend) -> Time {
        match self.delays.get(&send.channel) {
            Some(&d) => send.clamp(send.sent_at + d),
            None => {
                let slack = send.bounds.slack() as f64;
                let extra = (slack * self.default_fraction).round() as u64;
                send.earliest() + extra
            }
        }
    }
}

/// Replays exact delivery times keyed by `(sending node, destination)`,
/// falling back to a fraction policy for unkeyed messages. Delivery times
/// are clamped into bounds.
///
/// This is the building block for the run constructions of the causality
/// layer (runs from valid timing functions, Lemma 8; fast runs, Def. 24).
#[derive(Debug, Clone)]
pub struct ReplayScheduler {
    map: BTreeMap<(NodeId, ProcessId), Time>,
    fallback_fraction: f64,
}

impl ReplayScheduler {
    /// Creates an empty replay table with the given fallback fraction.
    pub fn new(fallback_fraction: f64) -> Self {
        ReplayScheduler {
            map: BTreeMap::new(),
            fallback_fraction: fallback_fraction.clamp(0.0, 1.0),
        }
    }

    /// Prescribes that the message sent by `src` to `dst` is delivered at
    /// `t` (clamped into bounds at schedule time).
    pub fn prescribe(&mut self, src: NodeId, dst: ProcessId, t: Time) -> &mut Self {
        self.map.insert((src, dst), t);
        self
    }

    /// Extracts the full delivery schedule of a recorded run: re-running
    /// the simulator with the same context, protocol and externals under
    /// this scheduler reproduces the run exactly (deterministic replay).
    pub fn from_run(run: &Run) -> Self {
        let mut sched = ReplayScheduler::new(1.0);
        for m in run.messages() {
            sched.prescribe(m.src(), m.channel().to, m.scheduled_at());
        }
        sched
    }

    /// Number of prescriptions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Scheduler for ReplayScheduler {
    fn schedule(&mut self, _run: &Run, send: PendingSend) -> Time {
        match self.map.get(&(send.src, send.channel.to)) {
            Some(&t) => send.clamp(t),
            None => {
                let slack = send.bounds.slack() as f64;
                let extra = (slack * self.fallback_fraction).round() as u64;
                send.earliest() + extra
            }
        }
    }
}

/// Adapter turning a closure into a scheduler.
#[derive(Debug)]
pub struct FnScheduler<F>(pub F);

impl<F> Scheduler for FnScheduler<F>
where
    F: FnMut(&Run, PendingSend) -> Time,
{
    fn schedule(&mut self, run: &Run, send: PendingSend) -> Time {
        (self.0)(run, send)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::run::Run;

    fn send() -> (Run, PendingSend) {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_channel(i, j, 2, 6).unwrap();
        let ctx = b.build().unwrap();
        let bounds = ctx.channel_bounds(i, j).unwrap();
        let run = Run::skeleton(ctx, Time::new(10));
        (
            run,
            PendingSend {
                src: NodeId::new(i, 1),
                channel: Channel::new(i, j),
                sent_at: Time::new(5),
                bounds,
            },
        )
    }

    #[test]
    fn window_and_clamp() {
        let (_, s) = send();
        assert_eq!(s.earliest(), Time::new(7));
        assert_eq!(s.latest(), Time::new(11));
        assert_eq!(s.clamp(Time::new(1)), Time::new(7));
        assert_eq!(s.clamp(Time::new(99)), Time::new(11));
        assert_eq!(s.clamp(Time::new(9)), Time::new(9));
    }

    #[test]
    fn eager_and_lazy() {
        let (run, s) = send();
        assert_eq!(EagerScheduler.schedule(&run, s), Time::new(7));
        assert_eq!(LazyScheduler.schedule(&run, s), Time::new(11));
    }

    #[test]
    fn fraction_rounds() {
        let (run, s) = send();
        assert_eq!(FractionScheduler::new(0.0).schedule(&run, s), Time::new(7));
        assert_eq!(FractionScheduler::new(0.5).schedule(&run, s), Time::new(9));
        assert_eq!(FractionScheduler::new(1.0).schedule(&run, s), Time::new(11));
        // Out-of-range fractions are clamped.
        assert_eq!(FractionScheduler::new(7.0).schedule(&run, s), Time::new(11));
    }

    #[test]
    fn random_is_deterministic_and_in_bounds() {
        let (run, s) = send();
        let mut a = RandomScheduler::seeded(42);
        let mut b = RandomScheduler::seeded(42);
        for _ in 0..50 {
            let ta = a.schedule(&run, s);
            let tb = b.schedule(&run, s);
            assert_eq!(ta, tb);
            assert!(ta >= s.earliest() && ta <= s.latest());
        }
    }

    #[test]
    fn per_channel_and_replay() {
        let (run, s) = send();
        let mut pc = PerChannelScheduler::new(0.0);
        pc.set_delay(s.channel, 4);
        assert_eq!(pc.schedule(&run, s), Time::new(9));
        pc.set_delay(s.channel, 100);
        assert_eq!(pc.schedule(&run, s), Time::new(11)); // clamped

        let mut rp = ReplayScheduler::new(1.0);
        assert!(rp.is_empty());
        rp.prescribe(s.src, s.channel.to, Time::new(8));
        assert_eq!(rp.len(), 1);
        assert_eq!(rp.schedule(&run, s), Time::new(8));
        let other = PendingSend {
            src: NodeId::new(s.channel.to, 1),
            ..s
        };
        assert_eq!(rp.schedule(&run, other), Time::new(11)); // fallback lazy
    }

    #[test]
    fn replay_from_run_reproduces_it() {
        use crate::protocols::Ffip;
        use crate::sim::{SimConfig, Simulator};
        let mut b = crate::net::Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 2, 6).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
        sim.external(Time::new(1), i, "kick");
        let original = sim
            .run(&mut Ffip::new(), &mut RandomScheduler::seeded(9))
            .unwrap();
        let mut replay = ReplayScheduler::from_run(&original);
        let again = sim.run(&mut Ffip::new(), &mut replay).unwrap();
        assert_eq!(original, again);
    }

    #[test]
    fn fn_scheduler() {
        let (run, s) = send();
        let mut f = FnScheduler(|_: &Run, send: PendingSend| send.earliest());
        assert_eq!(f.schedule(&run, s), Time::new(7));
    }
}
