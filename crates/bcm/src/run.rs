//! Recorded runs and causality queries on them.
//!
//! A run `r` is an infinite sequence of global states in the paper; here we
//! record the finite prefix up to a configurable *horizon* as per-process
//! timelines of [`NodeRecord`]s plus message/external tables. Every object
//! of the paper's analysis — `past(r, σ)`, bounds graphs, zigzag patterns,
//! knowledge at a node — depends only on such a finite prefix.

use std::collections::VecDeque;
use std::fmt;

use crate::error::BcmError;
use crate::event::{ActionRecord, Receipt};
use crate::message::{ExternalId, ExternalRecord, MessageId, MessageRecord};
use crate::net::{Context, ProcessId};
use crate::time::Time;

/// A basic node `σ = (i, ℓ)` (paper §2.2): a point on process `i`'s
/// timeline, identified by the position of its local state.
///
/// Under a full-information protocol the local state of a process never
/// repeats, so `(process, index)` is in one-to-one correspondence with the
/// paper's `(process, local state)` pairs. Index `0` is the *initial node*
/// (time 0, empty history).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId {
    proc: ProcessId,
    index: u32,
}

impl NodeId {
    /// Creates a node identifier.
    pub const fn new(proc: ProcessId, index: u32) -> Self {
        NodeId { proc, index }
    }

    /// The initial node of `proc` (time 0).
    pub const fn initial(proc: ProcessId) -> Self {
        NodeId { proc, index: 0 }
    }

    /// The process whose timeline this node lies on (an *i-node* has
    /// `proc() == i`).
    #[inline]
    pub const fn proc(self) -> ProcessId {
        self.proc
    }

    /// Zero-based position on the process timeline.
    #[inline]
    pub const fn index(self) -> u32 {
        self.index
    }

    /// Whether this is the initial node (index 0, time 0).
    pub const fn is_initial(self) -> bool {
        self.index == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.proc, self.index)
    }
}

/// Everything observed at (and performed by) one basic node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    id: NodeId,
    time: Time,
    receipts: Vec<Receipt>,
    sent: Vec<MessageId>,
    actions: Vec<ActionRecord>,
}

impl NodeRecord {
    /// Creates a node record. Used by the simulator and run constructions.
    pub fn new(id: NodeId, time: Time) -> Self {
        NodeRecord {
            id,
            time,
            receipts: Vec::new(),
            sent: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The (externally observable) time `time_r(σ)` at which the node
    /// arises. Protocol code never sees this; see [`crate::View`].
    pub fn time(&self) -> Time {
        self.time
    }

    /// Receipts observed at this node (non-empty for non-initial nodes).
    pub fn receipts(&self) -> &[Receipt] {
        &self.receipts
    }

    /// Messages sent by this node (under FFIP: one per out-neighbor).
    pub fn sent(&self) -> &[MessageId] {
        &self.sent
    }

    /// Local actions performed at this node.
    pub fn actions(&self) -> &[ActionRecord] {
        &self.actions
    }

    /// Records a receipt. Used by the simulator.
    pub fn push_receipt(&mut self, r: Receipt) {
        self.receipts.push(r);
    }

    /// Records a sent message. Used by the simulator.
    pub fn push_sent(&mut self, m: MessageId) {
        self.sent.push(m);
    }

    /// Records an action. Used by the simulator.
    pub fn push_action(&mut self, a: ActionRecord) {
        self.actions.push(a);
    }
}

/// The causal past `past(r, σ) = {σ' : σ' ⪯_r σ}` of a basic node
/// (paper Definition 2), including `σ` itself.
///
/// Because the happens-before relation is downward closed along each
/// timeline (Locality), the past is fully described by the latest in-past
/// index of every process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Past {
    of: NodeId,
    /// `latest[i]` = largest index of an `i`-node in the past, or `None`
    /// if no `i`-node is in the past.
    latest: Vec<Option<u32>>,
}

impl Past {
    /// The node whose past this is.
    pub fn of(&self) -> NodeId {
        self.of
    }

    /// Whether `node` is in the past (i.e. `node ⪯_r of`).
    pub fn contains(&self, node: NodeId) -> bool {
        match self.latest.get(node.proc().index()) {
            Some(Some(k)) => node.index() <= *k,
            _ => false,
        }
    }

    /// The *boundary node* of process `i` (paper Definition 15): the last
    /// `i`-node in the past, if any.
    pub fn boundary(&self, proc: ProcessId) -> Option<NodeId> {
        self.latest
            .get(proc.index())
            .copied()
            .flatten()
            .map(|k| NodeId::new(proc, k))
    }

    /// Iterator over all boundary nodes (one per process with any node in
    /// the past), in process order.
    pub fn boundaries(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.latest
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|k| NodeId::new(ProcessId::new(i as u32), k)))
    }

    /// Iterator over every node in the past, in (process, index) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.latest.iter().enumerate().flat_map(|(i, k)| {
            let n = k.map_or(0, |k| k + 1);
            (0..n).map(move |idx| NodeId::new(ProcessId::new(i as u32), idx))
        })
    }

    /// Total number of nodes in the past.
    pub fn len(&self) -> usize {
        self.latest
            .iter()
            .map(|k| k.map_or(0, |k| k as usize + 1))
            .sum()
    }

    /// Whether the past is empty (never true: it contains `of` itself).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A recorded run prefix of the system `R(P, γ)`.
///
/// The context is held behind an [`std::sync::Arc`]: many runs of one workload (sweep
/// grids, seed batteries, fast-run constructions) share a single context
/// allocation instead of deep-copying the network per run.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    context: std::sync::Arc<Context>,
    timelines: Vec<Vec<NodeRecord>>,
    messages: Vec<MessageRecord>,
    externals: Vec<ExternalRecord>,
    horizon: Time,
}

impl Run {
    /// Creates an empty run skeleton: every process has exactly its initial
    /// node at time 0. Used by the simulator and run constructions.
    ///
    /// Accepts either an owned [`Context`] or a shared
    /// `Arc<Context>`.
    pub fn skeleton(context: impl Into<std::sync::Arc<Context>>, horizon: Time) -> Self {
        let context = context.into();
        let n = context.network().len();
        let timelines = (0..n)
            .map(|i| {
                vec![NodeRecord::new(
                    NodeId::initial(ProcessId::new(i as u32)),
                    Time::ZERO,
                )]
            })
            .collect();
        Run {
            context,
            timelines,
            messages: Vec::new(),
            externals: Vec::new(),
            horizon,
        }
    }

    /// The bounded context `γ` this run belongs to.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// The context as a cheaply clonable shared handle.
    pub fn context_arc(&self) -> std::sync::Arc<Context> {
        self.context.clone()
    }

    /// The recorded horizon: all node times are `<= horizon`.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The timeline of process `p` in node order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a process of the network.
    pub fn timeline(&self, p: ProcessId) -> &[NodeRecord] {
        &self.timelines[p.index()]
    }

    /// The record of `node`, if it exists.
    pub fn node(&self, node: NodeId) -> Option<&NodeRecord> {
        self.timelines
            .get(node.proc().index())?
            .get(node.index() as usize)
    }

    /// The record of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`BcmError::UnknownNode`] if the node does not appear.
    pub fn node_checked(&self, node: NodeId) -> Result<&NodeRecord, BcmError> {
        self.node(node).ok_or_else(|| BcmError::UnknownNode {
            detail: format!("{node} does not appear in the run"),
        })
    }

    /// `time_r(σ)`: when the node arises, if it appears.
    pub fn time(&self, node: NodeId) -> Option<Time> {
        self.node(node).map(NodeRecord::time)
    }

    /// Whether `node` appears in the recorded prefix.
    pub fn appears(&self, node: NodeId) -> bool {
        self.node(node).is_some()
    }

    /// The node of process `p` at exactly time `t`, if any.
    pub fn node_at(&self, p: ProcessId, t: Time) -> Option<NodeId> {
        let tl = self.timelines.get(p.index())?;
        tl.binary_search_by_key(&t, NodeRecord::time)
            .ok()
            .map(|k| NodeId::new(p, k as u32))
    }

    /// The latest node of process `p` with time `<= t` (every process has
    /// at least its initial node at time 0).
    pub fn node_at_or_before(&self, p: ProcessId, t: Time) -> Option<NodeId> {
        let tl = self.timelines.get(p.index())?;
        match tl.binary_search_by_key(&t, NodeRecord::time) {
            Ok(k) => Some(NodeId::new(p, k as u32)),
            Err(0) => None,
            Err(k) => Some(NodeId::new(p, (k - 1) as u32)),
        }
    }

    /// The successor of `node` on its timeline (paper §2.2), if recorded.
    pub fn successor(&self, node: NodeId) -> Option<NodeId> {
        let next = NodeId::new(node.proc(), node.index() + 1);
        self.appears(next).then_some(next)
    }

    /// The predecessor of `node` on its timeline, if `node` is not initial.
    pub fn predecessor(&self, node: NodeId) -> Option<NodeId> {
        (!node.is_initial()).then(|| NodeId::new(node.proc(), node.index() - 1))
    }

    /// All recorded messages.
    pub fn messages(&self) -> &[MessageRecord] {
        &self.messages
    }

    /// The record of message `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a message of this run.
    pub fn message(&self, m: MessageId) -> &MessageRecord {
        &self.messages[m.index()]
    }

    /// All recorded external inputs.
    pub fn externals(&self) -> &[ExternalRecord] {
        &self.externals
    }

    /// The record of external input `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an external input of this run.
    pub fn external(&self, e: ExternalId) -> &ExternalRecord {
        &self.externals[e.index()]
    }

    /// The message sent by `node` to process `dst`, if any (under FFIP
    /// there is exactly one for every out-neighbor of a non-initial node).
    pub fn message_from_to(&self, node: NodeId, dst: ProcessId) -> Option<MessageId> {
        let rec = self.node(node)?;
        rec.sent
            .iter()
            .copied()
            .find(|&m| self.message(m).channel().to == dst)
    }

    /// Iterator over every recorded node in (process, index) order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeRecord> + '_ {
        self.timelines.iter().flatten()
    }

    /// Total number of recorded nodes.
    pub fn node_count(&self) -> usize {
        self.timelines.iter().map(Vec::len).sum()
    }

    /// Lamport's happens-before among basic nodes (paper Definition 2),
    /// reflexive on each timeline: `a ⪯_r b`.
    ///
    /// For repeated queries against the same `b`, compute [`Run::past`]
    /// once instead.
    pub fn happens_before(&self, a: NodeId, b: NodeId) -> bool {
        if !self.appears(a) || !self.appears(b) {
            return false;
        }
        if a.proc() == b.proc() {
            return a.index() <= b.index();
        }
        self.past(b).contains(a)
    }

    /// Computes `past(r, σ)` (paper Definition 2). `σ` itself is included.
    ///
    /// # Panics
    ///
    /// Panics if `σ` does not appear in the run.
    pub fn past(&self, sigma: NodeId) -> Past {
        assert!(self.appears(sigma), "past() of a node that does not appear");
        let n = self.timelines.len();
        // latest[i]: highest index of an i-node known to be in the past.
        let mut latest: Vec<Option<u32>> = vec![None; n];
        // scanned[i]: indices <= scanned[i] have had their receipts expanded.
        let mut scanned: Vec<i64> = vec![-1; n];
        latest[sigma.proc().index()] = Some(sigma.index());
        let mut queue: VecDeque<ProcessId> = VecDeque::new();
        queue.push_back(sigma.proc());
        while let Some(p) = queue.pop_front() {
            let pi = p.index();
            let hi = match latest[pi] {
                Some(k) => k as i64,
                None => continue,
            };
            while scanned[pi] < hi {
                let idx = (scanned[pi] + 1) as usize;
                scanned[pi] += 1;
                let rec = &self.timelines[pi][idx];
                for receipt in rec.receipts() {
                    if let Receipt::Internal(m) = receipt {
                        let src = self.message(*m).src();
                        let spi = src.proc().index();
                        let new = src.index();
                        let improved = match latest[spi] {
                            Some(cur) => new > cur,
                            None => true,
                        };
                        if improved {
                            latest[spi] = Some(new);
                            queue.push_back(src.proc());
                        }
                    }
                }
            }
        }
        Past { of: sigma, latest }
    }

    /// The node of process `C` that received the external input named
    /// `name`, if any (e.g. the node `σ_C` where `µ_go` arrived).
    pub fn external_receipt_node(&self, proc: ProcessId, name: &str) -> Option<NodeId> {
        self.externals
            .iter()
            .find(|e| e.proc() == proc && e.name() == name)
            .map(|e| e.node())
    }

    /// The first node (by time) at which an action named `name` was
    /// performed by process `p`, if any.
    pub fn action_node(&self, p: ProcessId, name: &str) -> Option<NodeId> {
        self.timelines[p.index()]
            .iter()
            .find(|rec| rec.actions().iter().any(|a| a.name() == name))
            .map(NodeRecord::id)
    }

    /// Mutable access for the simulator and run constructions.
    pub(crate) fn node_mut(&mut self, node: NodeId) -> &mut NodeRecord {
        &mut self.timelines[node.proc().index()][node.index() as usize]
    }

    pub(crate) fn push_node(&mut self, rec: NodeRecord) {
        self.timelines[rec.id().proc().index()].push(rec);
    }

    pub(crate) fn push_message(&mut self, rec: MessageRecord) {
        self.messages.push(rec);
    }

    pub(crate) fn push_external(&mut self, rec: ExternalRecord) {
        self.externals.push(rec);
    }

    pub(crate) fn message_mut(&mut self, m: MessageId) -> &mut MessageRecord {
        &mut self.messages[m.index()]
    }

    pub(crate) fn set_horizon(&mut self, horizon: Time) {
        self.horizon = horizon;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Channel, Network};

    fn tiny_context() -> Context {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 1, 3).unwrap();
        b.build().unwrap()
    }

    /// Hand-builds a run: i#1 at t1 (external), i#1 sends to j, delivered
    /// at j#1 at t3.
    fn tiny_run() -> Run {
        let ctx = tiny_context();
        let i = ProcessId::new(0);
        let j = ProcessId::new(1);
        let mut run = Run::skeleton(ctx, Time::new(10));
        let i1 = NodeId::new(i, 1);
        let mut rec = NodeRecord::new(i1, Time::new(1));
        rec.push_receipt(Receipt::External(ExternalId::new(0)));
        rec.push_sent(MessageId::new(0));
        rec.push_action(ActionRecord::new("a"));
        run.push_node(rec);
        run.push_external(ExternalRecord::new(
            ExternalId::new(0),
            "go",
            i,
            Time::new(1),
            i1,
        ));
        let mut msg = MessageRecord::new(
            MessageId::new(0),
            i1,
            Channel::new(i, j),
            Time::new(1),
            Time::new(3),
        );
        let j1 = NodeId::new(j, 1);
        msg.set_delivery(j1, Time::new(3));
        run.push_message(msg);
        let mut jrec = NodeRecord::new(j1, Time::new(3));
        jrec.push_receipt(Receipt::Internal(MessageId::new(0)));
        run.push_node(jrec);
        run
    }

    #[test]
    fn skeleton_has_initial_nodes() {
        let run = Run::skeleton(tiny_context(), Time::new(5));
        assert_eq!(run.node_count(), 2);
        let init = NodeId::initial(ProcessId::new(0));
        assert!(init.is_initial());
        assert_eq!(run.time(init), Some(Time::ZERO));
        assert_eq!(run.horizon(), Time::new(5));
    }

    #[test]
    fn lookups() {
        let run = tiny_run();
        let i = ProcessId::new(0);
        let j = ProcessId::new(1);
        assert_eq!(run.node_at(i, Time::new(1)), Some(NodeId::new(i, 1)));
        assert_eq!(run.node_at(i, Time::new(2)), None);
        assert_eq!(
            run.node_at_or_before(j, Time::new(9)),
            Some(NodeId::new(j, 1))
        );
        assert_eq!(
            run.node_at_or_before(j, Time::new(2)),
            Some(NodeId::initial(j))
        );
        assert_eq!(run.successor(NodeId::initial(i)), Some(NodeId::new(i, 1)));
        assert_eq!(run.successor(NodeId::new(i, 1)), None);
        assert_eq!(run.predecessor(NodeId::new(i, 1)), Some(NodeId::initial(i)));
        assert_eq!(run.predecessor(NodeId::initial(i)), None);
        assert_eq!(
            run.message_from_to(NodeId::new(i, 1), j),
            Some(MessageId::new(0))
        );
        assert_eq!(run.external_receipt_node(i, "go"), Some(NodeId::new(i, 1)));
        assert_eq!(run.external_receipt_node(j, "go"), None);
        assert_eq!(run.action_node(i, "a"), Some(NodeId::new(i, 1)));
        assert_eq!(run.action_node(j, "a"), None);
    }

    #[test]
    fn happens_before_and_past() {
        let run = tiny_run();
        let i = ProcessId::new(0);
        let j = ProcessId::new(1);
        let i0 = NodeId::initial(i);
        let i1 = NodeId::new(i, 1);
        let j0 = NodeId::initial(j);
        let j1 = NodeId::new(j, 1);
        // Locality (reflexive along a timeline).
        assert!(run.happens_before(i0, i1));
        assert!(run.happens_before(i1, i1));
        assert!(!run.happens_before(i1, i0));
        // Message edge.
        assert!(run.happens_before(i1, j1));
        assert!(!run.happens_before(j1, i1));
        // No relation between the initial nodes... except locality is
        // per-timeline; cross-process initial nodes are unrelated.
        assert!(!run.happens_before(i0, j0));

        let past = run.past(j1);
        assert!(past.contains(j1) && past.contains(j0));
        assert!(past.contains(i1) && past.contains(i0));
        assert_eq!(past.len(), 4);
        assert!(!past.is_empty());
        assert_eq!(past.boundary(i), Some(i1));
        assert_eq!(past.boundary(j), Some(j1));
        assert_eq!(past.boundaries().count(), 2);
        assert_eq!(past.iter().count(), 4);
        assert_eq!(past.of(), j1);

        let past_i1 = run.past(i1);
        assert!(!past_i1.contains(j0));
        assert_eq!(past_i1.boundary(j), None);
        assert_eq!(past_i1.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not appear")]
    fn past_of_missing_node_panics() {
        let run = tiny_run();
        let _ = run.past(NodeId::new(ProcessId::new(0), 9));
    }

    #[test]
    fn node_checked_errors() {
        let run = tiny_run();
        assert!(run.node_checked(NodeId::new(ProcessId::new(0), 9)).is_err());
        assert!(run.node_checked(NodeId::new(ProcessId::new(0), 1)).is_ok());
    }
}
