//! Transmission-time bounds `L, U : Chans -> N` with `1 <= L_ij <= U_ij < ∞`
//! (paper §2.1), and their extension to network paths.

use std::collections::BTreeMap;

use crate::error::BcmError;
use crate::net::Channel;
use crate::path::NetPath;

/// The `[L_ij, U_ij]` bounds of a single channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelBounds {
    lower: u64,
    upper: u64,
}

impl ChannelBounds {
    /// Creates bounds; callers are expected to have validated
    /// `1 <= lower <= upper` (the [`crate::NetworkBuilder`] does).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lower == 0` or `lower > upper`.
    pub fn new(lower: u64, upper: u64) -> Self {
        debug_assert!(lower >= 1 && lower <= upper);
        ChannelBounds { lower, upper }
    }

    /// Minimum transmission time `L_ij`.
    pub const fn lower(self) -> u64 {
        self.lower
    }

    /// Maximum transmission time `U_ij`.
    pub const fn upper(self) -> u64 {
        self.upper
    }

    /// The slack `U_ij - L_ij` of the channel.
    pub const fn slack(self) -> u64 {
        self.upper - self.lower
    }

    /// Whether `delay` is a legal transmission time for this channel.
    pub const fn permits(self, delay: u64) -> bool {
        self.lower <= delay && delay <= self.upper
    }
}

/// The bound functions `L, U` for a whole network.
///
/// # Examples
///
/// ```
/// use zigzag_bcm::{Bounds, Channel, ProcessId};
/// use zigzag_bcm::bounds::ChannelBounds;
/// let mut bounds = Bounds::new();
/// let ch = Channel::new(ProcessId::new(0), ProcessId::new(1));
/// bounds.insert(ch, ChannelBounds::new(2, 5));
/// assert_eq!(bounds.lower(ch), Some(2));
/// assert_eq!(bounds.upper(ch), Some(5));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bounds {
    map: BTreeMap<Channel, ChannelBounds>,
}

impl Bounds {
    /// Creates an empty bounds table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of channels covered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no channel is covered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sets the bounds of `channel`, replacing any previous entry.
    pub fn insert(&mut self, channel: Channel, bounds: ChannelBounds) {
        self.map.insert(channel, bounds);
    }

    /// The bounds of `channel`, if covered.
    pub fn get(&self, channel: Channel) -> Option<ChannelBounds> {
        self.map.get(&channel).copied()
    }

    /// Lower bound `L_ij` of `channel`.
    pub fn lower(&self, channel: Channel) -> Option<u64> {
        self.get(channel).map(ChannelBounds::lower)
    }

    /// Upper bound `U_ij` of `channel`.
    pub fn upper(&self, channel: Channel) -> Option<u64> {
        self.get(channel).map(ChannelBounds::upper)
    }

    /// Sum of lower bounds `L(p)` along a path (paper §2.1).
    ///
    /// A singleton path has `L(p) = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`BcmError::MissingChannel`] if a hop is not covered.
    pub fn path_lower(&self, path: &NetPath) -> Result<u64, BcmError> {
        self.sum_path(path, ChannelBounds::lower)
    }

    /// Sum of upper bounds `U(p)` along a path (paper §2.1).
    ///
    /// A singleton path has `U(p) = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`BcmError::MissingChannel`] if a hop is not covered.
    pub fn path_upper(&self, path: &NetPath) -> Result<u64, BcmError> {
        self.sum_path(path, ChannelBounds::upper)
    }

    fn sum_path(&self, path: &NetPath, f: impl Fn(ChannelBounds) -> u64) -> Result<u64, BcmError> {
        let mut total = 0u64;
        for hop in path.hops() {
            let b = self.get(hop).ok_or(BcmError::MissingChannel {
                from: hop.from,
                to: hop.to,
            })?;
            total += f(b);
        }
        Ok(total)
    }

    /// The largest upper bound over all covered channels (0 if empty).
    pub fn max_upper(&self) -> u64 {
        self.map.values().map(|b| b.upper()).max().unwrap_or(0)
    }

    /// Iterator over `(channel, bounds)` pairs in channel order.
    pub fn iter(&self) -> impl Iterator<Item = (Channel, ChannelBounds)> + '_ {
        self.map.iter().map(|(c, b)| (*c, *b))
    }

    /// Flattens the bounds into a dense `from * n + to` table (`None`
    /// where no channel exists), `n` being the process count. Append-path
    /// consumers that resolve bounds per delivered message probe this
    /// instead of the ordered map.
    pub fn dense_table(&self, n: usize) -> Vec<Option<(u64, u64)>> {
        let mut table = vec![None; n * n];
        for (c, b) in self.iter() {
            table[c.from.index() * n + c.to.index()] = Some((b.lower(), b.upper()));
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::ProcessId;

    fn ch(a: u32, b: u32) -> Channel {
        Channel::new(ProcessId::new(a), ProcessId::new(b))
    }

    #[test]
    fn channel_bounds_basics() {
        let b = ChannelBounds::new(2, 5);
        assert_eq!(b.lower(), 2);
        assert_eq!(b.upper(), 5);
        assert_eq!(b.slack(), 3);
        assert!(b.permits(2) && b.permits(5));
        assert!(!b.permits(1) && !b.permits(6));
    }

    #[test]
    fn path_sums() {
        let mut bounds = Bounds::new();
        bounds.insert(ch(0, 1), ChannelBounds::new(2, 5));
        bounds.insert(ch(1, 2), ChannelBounds::new(3, 7));
        let p = NetPath::new(vec![
            ProcessId::new(0),
            ProcessId::new(1),
            ProcessId::new(2),
        ])
        .unwrap();
        assert_eq!(bounds.path_lower(&p).unwrap(), 5);
        assert_eq!(bounds.path_upper(&p).unwrap(), 12);
        let singleton = NetPath::singleton(ProcessId::new(0));
        assert_eq!(bounds.path_lower(&singleton).unwrap(), 0);
        assert_eq!(bounds.path_upper(&singleton).unwrap(), 0);
    }

    #[test]
    fn missing_channel_is_an_error() {
        let bounds = Bounds::new();
        let p = NetPath::new(vec![ProcessId::new(0), ProcessId::new(1)]).unwrap();
        assert!(matches!(
            bounds.path_lower(&p),
            Err(BcmError::MissingChannel { .. })
        ));
    }

    #[test]
    fn max_upper_over_channels() {
        let mut bounds = Bounds::new();
        assert_eq!(bounds.max_upper(), 0);
        bounds.insert(ch(0, 1), ChannelBounds::new(1, 9));
        bounds.insert(ch(1, 0), ChannelBounds::new(1, 4));
        assert_eq!(bounds.max_upper(), 9);
        assert_eq!(bounds.iter().count(), 2);
        assert_eq!(bounds.len(), 2);
        assert!(!bounds.is_empty());
    }
}
