//! The communication network `Net = (Procs, Chans)` and the bounded context
//! `γ = ((Net, L, U), G_0)` (paper §2.1).

use std::collections::BTreeMap;
use std::fmt;

use crate::bounds::{Bounds, ChannelBounds};
use crate::error::BcmError;

/// Identifier of a process (`i ∈ Procs = {1, …, n}`, zero-based here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from a zero-based index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// The zero-based index of this process.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A directed communication channel `(i, j) ∈ Chans`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Sending endpoint.
    pub from: ProcessId,
    /// Receiving endpoint.
    pub to: ProcessId,
}

impl Channel {
    /// Creates the channel `(from, to)`.
    #[inline]
    pub const fn new(from: ProcessId, to: ProcessId) -> Self {
        Channel { from, to }
    }

    /// The reversed channel `(to, from)` (which may or may not exist in a
    /// given network).
    #[inline]
    pub const fn reversed(self) -> Self {
        Channel {
            from: self.to,
            to: self.from,
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.from, self.to)
    }
}

/// The directed network graph `Net = (Procs, Chans)`.
///
/// Constructed through [`Network::builder`]. Immutable once built; the
/// simulator, causality layer and bounds graphs all borrow it.
///
/// # Examples
///
/// ```
/// use zigzag_bcm::Network;
/// # fn main() -> Result<(), zigzag_bcm::BcmError> {
/// let mut b = Network::builder();
/// let i = b.add_process("i");
/// let j = b.add_process("j");
/// b.add_channel(i, j, 1, 4)?;
/// let ctx = b.build()?;
/// assert!(ctx.network().has_channel(i, j));
/// assert!(!ctx.network().has_channel(j, i));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    names: Vec<String>,
    /// Outgoing adjacency, sorted for determinism.
    out_adj: Vec<Vec<ProcessId>>,
    /// Incoming adjacency, sorted for determinism.
    in_adj: Vec<Vec<ProcessId>>,
    channels: Vec<Channel>,
}

impl Network {
    /// Starts building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::new()
    }

    /// Number of processes `n = |Procs|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the network has no processes. Built networks are never empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over all process identifiers in index order.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.names.len() as u32).map(ProcessId::new)
    }

    /// Human-readable name of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a process of this network.
    pub fn name(&self, p: ProcessId) -> &str {
        &self.names[p.index()]
    }

    /// Looks a process up by name.
    pub fn process_by_name(&self, name: &str) -> Option<ProcessId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| ProcessId::new(i as u32))
    }

    /// Whether `p` is a process of this network.
    pub fn contains(&self, p: ProcessId) -> bool {
        p.index() < self.names.len()
    }

    /// Whether the channel `(from, to)` exists.
    pub fn has_channel(&self, from: ProcessId, to: ProcessId) -> bool {
        self.contains(from) && self.out_adj[from.index()].binary_search(&to).is_ok()
    }

    /// Out-neighbors of `p` (receivers of `p`'s messages), sorted.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a process of this network.
    pub fn out_neighbors(&self, p: ProcessId) -> &[ProcessId] {
        &self.out_adj[p.index()]
    }

    /// In-neighbors of `p` (processes that can send to `p`), sorted.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a process of this network.
    pub fn in_neighbors(&self, p: ProcessId) -> &[ProcessId] {
        &self.in_adj[p.index()]
    }

    /// All channels, sorted by `(from, to)`.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }
}

/// The bounded context `γ = ((Net, L, U), G_0)` in which protocols operate.
///
/// The set of initial global states `G_0` is a single canonical state here:
/// every process starts in an empty initial local state. (The paper's
/// results are per-run; richer initial-state sets would only add
/// uncertainty orthogonal to the timing analysis.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    net: Network,
    bounds: Bounds,
}

impl Context {
    /// Assembles a context from a network and matching bounds.
    ///
    /// # Errors
    ///
    /// Returns an error if `bounds` does not cover exactly the channels of
    /// `net`.
    pub fn new(net: Network, bounds: Bounds) -> Result<Self, BcmError> {
        for ch in net.channels() {
            if bounds.get(*ch).is_none() {
                return Err(BcmError::MissingChannel {
                    from: ch.from,
                    to: ch.to,
                });
            }
        }
        if bounds.len() != net.channels().len() {
            return Err(BcmError::IllegalRun {
                detail: "bounds mention channels missing from the network".into(),
            });
        }
        Ok(Context { net, bounds })
    }

    /// The network graph.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The transmission-time bounds `L, U`.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// Convenience accessor for a single channel's bounds.
    pub fn channel_bounds(&self, from: ProcessId, to: ProcessId) -> Option<ChannelBounds> {
        self.bounds.get(Channel::new(from, to))
    }

    /// The largest upper bound over all channels (0 for a channel-free net).
    pub fn max_upper(&self) -> u64 {
        self.bounds.max_upper()
    }
}

/// Incremental builder for [`Network`] + [`Bounds`] (producing a [`Context`]).
///
/// See [`Network::builder`] for an example.
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    names: Vec<String>,
    chans: BTreeMap<(ProcessId, ProcessId), ChannelBounds>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a process with a display `name`, returning its identifier.
    pub fn add_process(&mut self, name: impl Into<String>) -> ProcessId {
        let id = ProcessId::new(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// Adds `count` processes named `p0, p1, …`, returning their ids.
    pub fn add_processes(&mut self, count: usize) -> Vec<ProcessId> {
        (0..count)
            .map(|_| {
                let n = self.names.len();
                self.add_process(format!("p{n}"))
            })
            .collect()
    }

    /// Adds the directed channel `(from, to)` with bounds `[lower, upper]`.
    ///
    /// # Errors
    ///
    /// Rejects unknown endpoints, self-loops, duplicate channels, and bounds
    /// violating `1 <= lower <= upper`.
    pub fn add_channel(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        lower: u64,
        upper: u64,
    ) -> Result<&mut Self, BcmError> {
        if from.index() >= self.names.len() {
            return Err(BcmError::UnknownProcess(from));
        }
        if to.index() >= self.names.len() {
            return Err(BcmError::UnknownProcess(to));
        }
        if from == to {
            return Err(BcmError::SelfLoop(from));
        }
        if lower == 0 || lower > upper {
            return Err(BcmError::InvalidBounds {
                from,
                to,
                lower,
                upper,
            });
        }
        if self.chans.contains_key(&(from, to)) {
            return Err(BcmError::DuplicateChannel { from, to });
        }
        self.chans
            .insert((from, to), ChannelBounds::new(lower, upper));
        Ok(self)
    }

    /// Adds channels in both directions with the same bounds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkBuilder::add_channel`], in either
    /// direction.
    pub fn add_bidirectional(
        &mut self,
        a: ProcessId,
        b: ProcessId,
        lower: u64,
        upper: u64,
    ) -> Result<&mut Self, BcmError> {
        self.add_channel(a, b, lower, upper)?;
        self.add_channel(b, a, lower, upper)?;
        Ok(self)
    }

    /// Finalizes the builder into a [`Context`].
    ///
    /// # Errors
    ///
    /// Returns [`BcmError::EmptyNetwork`] if no process was added.
    pub fn build(&self) -> Result<Context, BcmError> {
        if self.names.is_empty() {
            return Err(BcmError::EmptyNetwork);
        }
        let n = self.names.len();
        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        let mut channels = Vec::with_capacity(self.chans.len());
        let mut bounds = Bounds::new();
        for (&(from, to), &b) in &self.chans {
            out_adj[from.index()].push(to);
            in_adj[to.index()].push(from);
            channels.push(Channel::new(from, to));
            bounds.insert(Channel::new(from, to), b);
        }
        for v in &mut out_adj {
            v.sort_unstable();
        }
        for v in &mut in_adj {
            v.sort_unstable();
        }
        let net = Network {
            names: self.names.clone(),
            out_adj,
            in_adj,
            channels,
        };
        Context::new(net, bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_proc() -> (NetworkBuilder, ProcessId, ProcessId) {
        let mut b = NetworkBuilder::new();
        let i = b.add_process("i");
        let j = b.add_process("j");
        (b, i, j)
    }

    #[test]
    fn builder_builds_adjacency() {
        let (mut b, i, j) = two_proc();
        let k = b.add_process("k");
        b.add_channel(i, j, 1, 2).unwrap();
        b.add_channel(i, k, 3, 4).unwrap();
        b.add_channel(k, i, 1, 1).unwrap();
        let ctx = b.build().unwrap();
        let net = ctx.network();
        assert_eq!(net.len(), 3);
        assert_eq!(net.out_neighbors(i), &[j, k]);
        assert_eq!(net.in_neighbors(i), &[k]);
        assert!(net.has_channel(i, k));
        assert!(!net.has_channel(j, i));
        assert_eq!(net.channels().len(), 3);
        assert_eq!(ctx.channel_bounds(i, k).unwrap().lower(), 3);
        assert_eq!(ctx.max_upper(), 4);
    }

    #[test]
    fn names_resolve() {
        let (b, i, j) = two_proc();
        let ctx = b.build().unwrap();
        assert_eq!(ctx.network().name(i), "i");
        assert_eq!(ctx.network().process_by_name("j"), Some(j));
        assert_eq!(ctx.network().process_by_name("zz"), None);
    }

    #[test]
    fn rejects_bad_channels() {
        let (mut b, i, j) = two_proc();
        assert!(matches!(
            b.add_channel(i, i, 1, 1),
            Err(BcmError::SelfLoop(_))
        ));
        assert!(matches!(
            b.add_channel(i, j, 0, 1),
            Err(BcmError::InvalidBounds { .. })
        ));
        assert!(matches!(
            b.add_channel(i, j, 3, 2),
            Err(BcmError::InvalidBounds { .. })
        ));
        b.add_channel(i, j, 1, 1).unwrap();
        assert!(matches!(
            b.add_channel(i, j, 1, 1),
            Err(BcmError::DuplicateChannel { .. })
        ));
        let unknown = ProcessId::new(99);
        assert!(matches!(
            b.add_channel(unknown, j, 1, 1),
            Err(BcmError::UnknownProcess(_))
        ));
        assert!(matches!(
            b.add_channel(i, unknown, 1, 1),
            Err(BcmError::UnknownProcess(_))
        ));
    }

    #[test]
    fn rejects_empty_network() {
        let b = NetworkBuilder::new();
        assert!(matches!(b.build(), Err(BcmError::EmptyNetwork)));
    }

    #[test]
    fn bidirectional_adds_both() {
        let (mut b, i, j) = two_proc();
        b.add_bidirectional(i, j, 2, 5).unwrap();
        let ctx = b.build().unwrap();
        assert!(ctx.network().has_channel(i, j));
        assert!(ctx.network().has_channel(j, i));
    }

    #[test]
    fn channel_reversed() {
        let ch = Channel::new(ProcessId::new(1), ProcessId::new(2));
        assert_eq!(ch.reversed().from, ProcessId::new(2));
        assert_eq!(ch.reversed().to, ProcessId::new(1));
        assert_eq!(ch.to_string(), "(p1 -> p2)");
    }

    #[test]
    fn add_processes_names_sequentially() {
        let mut b = NetworkBuilder::new();
        let ids = b.add_processes(3);
        assert_eq!(ids.len(), 3);
        let ctx = b.build().unwrap();
        assert_eq!(ctx.network().name(ids[2]), "p2");
    }
}
