//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This shim keeps the integration suites
//! source-compatible: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range / tuple / [`Just`] / [`any`] /
//! [`collection::vec`] strategies, the [`proptest!`] macro, and the
//! `prop_assert!` family.
//!
//! Differences from the real crate: cases are drawn from a generator
//! seeded **deterministically from the test name** (reproducible across
//! runs, no persistence files), and failing cases are reported but **not
//! shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use std::fmt;

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Marks the current case as failed with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Marks the current case as rejected (treated as a failure by the
        /// shim, which has no rejection budget).
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The deterministic case generator: SplitMix64 seeded from the test
    /// name, so every test has its own reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for a named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and Rust versions.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Produces the next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[lo, hi]`.
        pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo <= hi, "empty range");
            let span = hi - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            // Multiply-shift with rejection (Lemire): unbiased.
            let n = span + 1;
            loop {
                let m = (self.next_u64() as u128) * (n as u128);
                if (m as u64) >= n.wrapping_neg() % n {
                    return lo + ((m >> 64) as u64);
                }
            }
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to draw and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the result.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.uniform(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.uniform(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = (self.start as i64 as u64).wrapping_add(1 << 63);
                let hi = (self.end as i64 as u64).wrapping_add(1 << 63) - 1;
                rng.uniform(lo, hi).wrapping_sub(1 << 63) as i64 as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = (*self.start() as i64 as u64).wrapping_add(1 << 63);
                let hi = (*self.end() as i64 as u64).wrapping_add(1 << 63);
                rng.uniform(lo, hi).wrapping_sub(1 << 63) as i64 as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy for vectors whose elements are drawn from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.uniform(self.size.min as u64, self.size.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts inside a [`proptest!`] body, failing the case (not panicking)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        let s = (2usize..=4)
            .prop_flat_map(|n| (Just(n), collection::vec(1u64..=9, n..=n)))
            .prop_map(|(n, v)| (n, v));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|x| (1..=9).contains(x)));
        }
        let signed = (-4i64..8).generate(&mut rng);
        assert!((-4..8).contains(&signed));
        let b: bool = any::<bool>().generate(&mut rng);
        let _ = b;
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, early return, prop_assert forms.
        #[test]
        fn macro_expansion_works(x in 0u64..10, pair in (0usize..3, any::<bool>())) {
            if pair.1 && pair.0 == 0 {
                return Ok(());
            }
            prop_assert!(x < 10);
            prop_assert!(x < 10, "x was {}", x);
            prop_assert_eq!(pair.0 * 2, pair.0 + pair.0);
            prop_assert_eq!(x, x, "identity failed for {}", x);
        }
    }
}
