//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no network access, so instead of the real
//! `rand` crate the workspace vendors this minimal, dependency-free
//! implementation: a [`rngs::StdRng`] backed by xoshiro256**
//! (seeded through SplitMix64, as the reference generator recommends), and
//! the [`Rng`] / [`SeedableRng`] trait surface used by the schedulers,
//! topologies and experiment binaries.
//!
//! Streams are **deterministic in the seed** — the property every consumer
//! in this workspace actually relies on — but are *not* bit-compatible
//! with the upstream `rand::rngs::StdRng` (which is ChaCha12 and makes no
//! cross-version stability promise anyway).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Re-exports of the concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A generator seedable from integer material, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 as recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of `T` over its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (the shim's analogue
/// of `rand::distributions::Standard`).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly (the shim's analogue of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` via Lemire's multiply-shift with rejection —
/// exact (unbiased) and branch-light.
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let low = m as u64;
        if low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

/// Uniform `u64` in `[lo, hi]` (inclusive).
fn uniform_incl<R: RngCore>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "cannot sample from an empty range");
    let span = hi - lo;
    if span == u64::MAX {
        return rng.next_u64();
    }
    lo + uniform_below(rng, span + 1)
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                uniform_incl(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                uniform_incl(rng, *self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let lo = (self.start as i64 as u64).wrapping_add(1 << 63);
                let hi = (self.end as i64 as u64).wrapping_add(1 << 63) - 1;
                (uniform_incl(rng, lo, hi).wrapping_sub(1 << 63)) as i64 as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let lo = (*self.start() as i64 as u64).wrapping_add(1 << 63);
                let hi = (*self.end() as i64 as u64).wrapping_add(1 << 63);
                (uniform_incl(rng, lo, hi).wrapping_sub(1 << 63)) as i64 as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

/// The workspace's standard generator: xoshiro256** with SplitMix64
/// seeding. Deterministic in the seed, `Clone` + `Debug` like the real
/// `StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion (Vigna), the reference seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** (Blackman & Vigna).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
        }
        // Degenerate one-point ranges work.
        assert_eq!(rng.gen_range(4u64..=4), 4);
        assert_eq!(rng.gen_range(-2i64..=-2), -2);
    }

    #[test]
    fn bool_and_float_behave() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let mut heads = 0;
        for _ in 0..1000 {
            if rng.gen_bool(0.5) {
                heads += 1;
            }
            let f: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((300..700).contains(&heads), "suspicious coin: {heads}/1000");
    }
}
