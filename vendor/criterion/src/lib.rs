//! Offline shim for the subset of the Criterion benchmarking API this
//! workspace uses (`Criterion`, benchmark groups, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros).
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched; this shim keeps the `benches/` sources
//! idiomatic while providing an honest (if statistically simpler)
//! wall-clock measurement: per benchmark it calibrates a batch size to a
//! minimum measurable duration, takes several timed samples, and reports
//! the **median** ns/iteration.
//!
//! Environment knobs:
//!
//! * `CRITERION_JSON=<path>` — write machine-readable results as a JSON
//!   array of `{"name", "ns_per_iter", "samples"}` objects (used by CI to
//!   produce `BENCH_pr1.json`). Each bench binary **overwrites** the
//!   file, so point different bench targets at different paths;
//! * `CRITERION_SAMPLE_MS` — target milliseconds per sample batch
//!   (default 10);
//! * `CRITERION_SAMPLES` — samples per benchmark (default 11).
//!
//! `cargo bench -- <filter>` filters benchmarks by substring, and
//! `cargo test --benches` (which passes `--test`) runs every benchmark
//! for a single iteration as a smoke test, like real Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (accepted and ignored by the shim's reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the whole
    /// batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    ns_per_iter: f64,
    samples: usize,
}

/// The shim's measurement configuration and result sink.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_ms: u64,
    samples: usize,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            test_mode: false,
            sample_ms: std::env::var("CRITERION_SAMPLE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(10),
            samples: std::env::var("CRITERION_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(11),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` from the process arguments (`cargo bench`
    /// passes `--bench` plus an optional substring filter; `--test`
    /// selects single-iteration smoke mode).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => c.test_mode = true,
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Whether `name` passes the command-line filter.
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_string(), f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, mut f: F) {
        if !self.selected(&name) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {name} ... ok");
            return;
        }
        // Calibrate: double the batch until it takes >= sample_ms.
        let target = Duration::from_millis(self.sample_ms);
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 40 {
                break;
            }
            // Jump close to the target, at least doubling.
            let scale = target.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9);
            iters = (iters.saturating_mul(2)).max((iters as f64 * scale) as u64);
        }
        let mut per_iter: Vec<f64> = (0..self.samples.max(1))
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        println!("{name:<50} {:>14}/iter (x{iters})", format_ns(median));
        self.records.push(Record {
            name,
            ns_per_iter: median,
            samples: per_iter.len(),
        });
    }

    /// Prints the closing summary and writes `CRITERION_JSON` if set.
    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&mut self) {
        if self.records.is_empty() {
            return;
        }
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let mut out = String::from("[\n");
            for (k, r) in self.records.iter().enumerate() {
                let sep = if k + 1 == self.records.len() { "" } else { "," };
                out.push_str(&format!(
                    "  {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"samples\": {}}}{sep}\n",
                    r.name.replace('"', "'"),
                    r.ns_per_iter,
                    r.samples
                ));
            }
            out.push_str("]\n");
            match OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)
            {
                Ok(mut fh) => {
                    let _ = fh.write_all(out.as_bytes());
                }
                Err(e) => eprintln!("criterion shim: cannot write {path}: {e}"),
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(1);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(name, |b| f(b, input));
        self
    }

    /// Benchmarks a plain closure within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(name, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            sample_ms: 1,
            samples: 3,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>());
        });
        group.finish();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.records.len(), 2);
        assert!(c.records.iter().all(|r| r.ns_per_iter >= 0.0));
        assert!(c.records[0].name.contains("g/sum/4"));
        assert!(c.selected("anything"));
        c.filter = Some("noop".into());
        assert!(!c.selected("g/sum/4"));
        let id = BenchmarkId::from_parameter(7);
        assert_eq!(id.name, "7");
    }
}
