//! Durative actions (the paper's footnote 3).
//!
//! The model treats actions as instantaneous, but §2.1 footnote 3 notes
//! that an action extending over time can be modeled "as a special channel
//! from the process to itself, with lower and upper bounds": invocation
//! and completion are instantaneous events separated by a bounded delay.
//!
//! Channels here are between distinct processes, so we realize the
//! footnote with a dedicated *timer* process per durative action: starting
//! the action sends to the timer, the timer's echo is the completion. The
//! pair of channels `worker → timer → worker` with bounds `[L/2, U/2]`
//! each is exactly the footnote's self-channel with bounds `[L, U]`.
//!
//! Scenario: an oven (worker `A`) starts a bake (durative, 10–14 ticks)
//! when the kitchen controller `C` fires the order. The packing station
//! `B` must have the box ready (`b`) at least `x` ticks before the bake
//! *completes* — an `Early` constraint against a **durative** action's
//! completion event, decided purely from bounds.
//!
//! ```text
//! cargo run --example durative_actions
//! ```

use zigzag::api::{Query, Response, SessionConfig, ZigzagService};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{Network, SimConfig, Simulator, Time};
use zigzag::core::GeneralNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // C → A [2,3]: the bake order. A ⇄ T [5,7]: the bake modeled as a
    // round trip through its timer (duration 10–14 total).
    // C → B [1,2]: the fast order copy to the packing station.
    let mut nb = Network::builder();
    let c = nb.add_process("controller");
    let a = nb.add_process("oven");
    let t = nb.add_process("bake-timer");
    let b = nb.add_process("packing");
    nb.add_channel(c, a, 2, 3)?;
    nb.add_channel(a, t, 5, 7)?;
    nb.add_channel(t, a, 5, 7)?;
    nb.add_channel(c, b, 1, 2)?;
    let ctx = nb.build()?;

    let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(60)));
    sim.external(Time::new(4), c, "order");
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(3))?;

    let sigma_c = run.external_receipt_node(c, "order").unwrap();
    // Invocation: the oven starts baking when the order arrives.
    let bake_start = GeneralNode::chain(sigma_c, &[a])?;
    // Completion: the timer echo returns — the footnote-3 self-channel.
    let bake_done = GeneralNode::chain(sigma_c, &[a, t, a])?;
    // B's node: where the order copy reaches packing.
    let theta_b = GeneralNode::chain(sigma_c, &[b])?;
    let sigma_b = theta_b.resolve(&run)?;

    let t_start = bake_start.time_in(&run)?;
    let t_done = bake_done.time_in(&run)?;
    println!(
        "bake starts at t={t_start}, completes at t={t_done} (duration {})",
        t_done.diff(t_start)
    );
    assert!((10..=14).contains(&t_done.diff(t_start)));

    // What does packing *know* about the completion event? Both queries
    // go through one service dispatch (they share the session's warm
    // observer state).
    let service = ZigzagService::new();
    let session = service.open_batch(run.clone(), SessionConfig::new());
    let answers = service.dispatch(
        session,
        &Query::QueryBatch(vec![
            Query::MaxX {
                sigma: sigma_b,
                theta1: theta_b.clone(),
                theta2: bake_done.clone(),
            },
            Query::MaxX {
                sigma: sigma_b,
                theta1: theta_b.clone(),
                theta2: bake_start.clone(),
            },
        ]),
    )?;
    let Response::ResponseBatch(answers) = answers else {
        unreachable!("batch queries return batch responses");
    };
    let Response::MaxX(Some(headroom)) = answers[0] else {
        panic!("constraint path exists");
    };
    println!("packing knows: box ready ≥ {headroom} ticks before the bake completes");
    // Arithmetic: L(C→A) + L(A→T) + L(T→A) − U(C→B) = 2+5+5 − 2 = 10.
    assert_eq!(headroom, 10);

    // And about the *invocation*? Strictly less, by the bake's minimum
    // duration — knowledge composes through the durative window.
    let Response::MaxX(Some(headroom_start)) = answers[1] else {
        panic!("constraint path exists");
    };
    println!("…and ≥ {headroom_start} ticks before the bake even starts");
    assert_eq!(headroom - headroom_start, 10); // = L(A→T→A), the min duration

    // The guarantee is schedule-independent: verify across 100 corners.
    let mut worst = i64::MAX;
    for seed in 0..400 {
        let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(60)));
        sim.external(Time::new(4), c, "order");
        let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))?;
        let gap = bake_done.time_in(&run)?.diff(theta_b.time_in(&run)?);
        worst = worst.min(gap);
    }
    println!("worst observed margin over 400 schedules: {worst} (bound {headroom} is sound)");
    assert!(worst >= headroom, "knowledge bound violated");
    assert!(worst <= headroom + 1, "bound far from tight — model bug?");
    Ok(())
}
