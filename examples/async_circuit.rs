//! Self-timed (clockless) circuit timing closure (the paper's §6 outlook).
//!
//! An asynchronous VLSI block has no clock; correctness rests on *relative*
//! timing constraints between signal events, guaranteed by bounds on wire
//! and gate delays — exactly the bcm model. Here a launch signal fans out
//! from a controller to a datapath driver and a latch:
//!
//! * the driver (`A`) updates the data bus when the launch reaches it
//!   (`a` = "bus settles");
//! * the latch (`B`) must close at least `x` = hold-time ticks **after**
//!   the bus settles: `Late⟨a --x--> b⟩` — a classic setup/hold check.
//!
//! The controller's fork (Figure 1) is how synchronous designers match
//! clock-tree delays; the zigzag generalization lets an *unrelated*
//! handshake through an arbiter certify the same constraint when the
//! direct fork is too weak.
//!
//! ```text
//! cargo run --example async_circuit
//! ```

use zigzag::api::{Query, Response, SessionConfig, ZigzagService};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::{PerChannelScheduler, RandomScheduler};
use zigzag::bcm::{diagram, Channel, Network, SimConfig, Simulator, Time};
use zigzag::core::GeneralNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Gate/wire delay bounds, in gate-delay units:
    //   ctl → drv  [2, 3]   launch wire to the datapath driver
    //   ctl → arb  [5, 6]   request to the arbiter
    //   arb → ltc  [4, 5]   grant wire to the latch control
    //   drv → ltc  [1, 8]   data bus (wide spread: crosstalk-dependent)
    let mut nb = Network::builder();
    let ctl = nb.add_process("ctl");
    let drv = nb.add_process("drv");
    let arb = nb.add_process("arb");
    let ltc = nb.add_process("ltc");
    nb.add_channel(ctl, drv, 2, 3)?;
    nb.add_channel(ctl, arb, 5, 6)?;
    nb.add_channel(arb, ltc, 4, 5)?;
    nb.add_channel(drv, ltc, 1, 8)?;
    let ctx = nb.build()?;

    // One launch event; delays fixed to a representative corner.
    let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(40)));
    sim.external(Time::new(1), ctl, "launch");
    let mut corner = PerChannelScheduler::new(0.5);
    corner.set_delay(Channel::new(ctl, drv), 2);
    corner.set_delay(Channel::new(ctl, arb), 6);
    corner.set_delay(Channel::new(arb, ltc), 5);
    let run = sim.run(&mut Ffip::new(), &mut corner)?;

    println!("── launch wavefront ───────────────────────────────────────");
    println!(
        "{}",
        diagram::render_window(&run, Time::new(0), Time::new(20))
    );

    // The latch closes when the arbiter's grant arrives. How much hold
    // margin after the bus settled does it *know* it has?
    let sigma_launch = run.external_receipt_node(ctl, "launch").expect("launched");
    let bus_settles = GeneralNode::chain(sigma_launch, &[drv])?;
    let grant_arrives = GeneralNode::chain(sigma_launch, &[arb, ltc])?;
    let sigma_latch = grant_arrives.resolve(&run)?;

    let service = ZigzagService::new();
    let session = service.open_batch(run.clone(), SessionConfig::new());
    let Response::MaxX(Some(hold)) = service.dispatch(
        session,
        &Query::MaxX {
            sigma: sigma_latch,
            theta1: bus_settles.clone(),
            theta2: grant_arrives.clone(),
        },
    )?
    else {
        panic!("constraint path exists");
    };
    println!("guaranteed hold margin at the latch: {hold} gate delays");
    println!("  fork arithmetic: L(ctl→arb→ltc) − U(ctl→drv) = (5+4) − 3 = 6");
    assert_eq!(hold, 6);

    let Response::Witness(Some(witness)) = service.dispatch(
        session,
        &Query::Witness {
            sigma: sigma_latch,
            theta1: bus_settles.clone(),
            theta2: grant_arrives.clone(),
        },
    )?
    else {
        panic!("positive thresholds carry witnesses");
    };
    assert_eq!(witness.weight, hold);
    println!(
        "timing-closure witness: zigzag weight {} — {}",
        witness.weight, witness.pattern
    );

    // Monte-Carlo across delay corners: the guarantee never breaks.
    let mut min_gap = i64::MAX;
    for seed in 0..200 {
        let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(1), ctl, "launch");
        let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))?;
        let t_bus = bus_settles.time_in(&run)?;
        let t_latch = grant_arrives.time_in(&run)?;
        min_gap = min_gap.min(t_latch.diff(t_bus));
    }
    println!("Monte-Carlo over 200 corners: worst observed hold margin = {min_gap}");
    assert!(min_gap >= hold, "timing closure violated — model bug");
    println!("closure holds: worst case >= guaranteed {hold} (bound is tight iff achieved)");
    Ok(())
}
