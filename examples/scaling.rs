//! Scaling the streaming facade: a 256-process feedback ring served
//! append-by-append.
//!
//! The layout rewrite of the SPFA hot core (SoA CSR, sentinel-coded
//! scratch arenas, u32 interior ids, delta relaxation) is aimed at runs
//! whose graphs grow to hundreds of processes while appends stay
//! µs-scale. This example makes that visible from the public entry
//! point: a bidirectional ring of n = 256 processes — every process
//! sits on feedback cycles in both directions — is simulated once, then
//! replayed through a `ZigzagService` stream session. Every appended
//! event is followed by a `TightBound` query at the brand-new node, so
//! each answer delta-relaxes the memoized longest-path state over just
//! the appended edges instead of re-running SPFA on the whole `GB(r)`.
//! A final `MaxX` query at the deepest observer exercises the `GE(r, σ)`
//! construction and the knowledge walk on the grown prefix.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use std::sync::Arc;
use std::time::Instant;

use zigzag::api::{Query, Response, SessionConfig, ZigzagService};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{topology, NodeId, ProcessId, RunCursor, SimConfig, Simulator, Time};
use zigzag::core::GeneralNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256usize;
    let ctx = Arc::new(topology::ring(n, 1, 3)?);
    let mut sim = Simulator::new(Arc::clone(&ctx), SimConfig::with_horizon(Time::new(40)));
    sim.external(Time::new(1), ProcessId::new(0), "kick");
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(7))?;
    println!(
        "feedback ring n={n}: {} nodes, {} messages over horizon {}",
        run.node_count(),
        run.messages().len(),
        run.horizon()
    );

    // Replay the whole schedule through the facade: one stream session,
    // one TightBound query per appended event, answered at the node the
    // append just created.
    let service = ZigzagService::new();
    let session = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
    let anchor = NodeId::initial(ProcessId::new(0));
    let events: Vec<_> = RunCursor::new(&run).collect();

    let started = Instant::now();
    let mut bounded = 0usize;
    let mut first = None;
    let mut sigma = None;
    for ev in &events {
        let report = service.append(session, ev)?;
        first.get_or_insert(report.node);
        let Response::TightBound(b) = service.dispatch(
            session,
            &Query::TightBound {
                from: anchor,
                to: report.node,
            },
        )?
        else {
            unreachable!("TightBound queries return TightBound responses");
        };
        if b.is_some() {
            bounded += 1;
        }
        sigma = Some(report.node);
    }
    let elapsed = started.elapsed();
    println!(
        "appended {} events, each followed by a TightBound query \
         ({bounded} causally bounded) in {:.1} ms — {:.1} µs per append+query",
        events.len(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / events.len() as f64
    );

    // One knowledge query at the deepest observer: builds GE(r, σ) over
    // the grown prefix and walks it for the exact threshold, from the
    // kick node (the first appended event) to the observer itself.
    let sigma = sigma.expect("the kicked ring produces events");
    let kick = first.expect("the kicked ring produces events");
    let started = Instant::now();
    let Response::MaxX(x) = service.dispatch(
        session,
        &Query::MaxX {
            sigma,
            theta1: GeneralNode::basic(kick),
            theta2: GeneralNode::basic(sigma),
        },
    )?
    else {
        unreachable!("MaxX queries return MaxX responses");
    };
    println!(
        "max_x({kick} -> {sigma}) = {x:?} at observer {sigma} ({:.1} ms cold)",
        started.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
