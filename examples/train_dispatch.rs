//! Train dispatch over a single-lane section (the paper's §1 motivation).
//!
//! A dispatcher `D` spontaneously releases an express from station `A`
//! (`a` = the express enters the shared single-lane section). Station `B`
//! wants to push a slow freight through the same section, which takes
//! `x` ticks to clear — so the freight must enter at least `x` ticks
//! *before* the express: `Early⟨b --x--> a⟩`.
//!
//! No station has a clock. The signalling network has slow, reliable
//! bounds towards `A` and a fast line towards `B`, so `B` can commit the
//! freight purely from the timing bounds — without any track-side
//! communication with `A`.
//!
//! ```text
//! cargo run --example train_dispatch
//! ```

use zigzag::api::{ProbeSemantics, Query, Response, SessionConfig, ZigzagService};
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{Network, Time};
use zigzag::coord::{
    AsyncChainStrategy, BStrategy, CoordKind, OptimalStrategy, Scenario, SimpleForkStrategy,
    TimedCoordination,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Signalling network: dispatcher D, stations A and B.
    //   D → A: old telegraph line, bounds [10, 14]
    //   D → B: fibre, bounds [1, 2]
    //   B → A: track-side line (lets the async baseline try to help A wait
    //          — useless here, since A acts unconditionally).
    let mut nb = Network::builder();
    let d = nb.add_process("dispatcher");
    let a = nb.add_process("station-A");
    let b = nb.add_process("station-B");
    nb.add_channel(d, a, 10, 14)?;
    nb.add_channel(d, b, 1, 2)?;
    nb.add_channel(b, a, 2, 4)?;
    let ctx = nb.build()?;

    println!("single-lane section: express from A, freight from B");
    println!("telegraph D→A [10,14]; fibre D→B [1,2]\n");
    println!(
        "{:>3} | {:^16} | {:^16} | {:^16}",
        "x", "optimal-zigzag", "simple-fork", "async-chain"
    );
    println!("{:->3}-+-{:-^16}-+-{:-^16}-+-{:-^16}", "", "", "", "");

    // The facade re-decides every optimal-strategy run from the recorded
    // transcript. Station B has an outgoing channel (B → A), so the probe
    // semantics matter: ExcludeOwnSends reproduces the in-simulation
    // protocol decision exactly.
    let service = ZigzagService::new();

    // Clearance sweep: the freight needs x ticks of head start.
    // Feasibility threshold: L_DA − U_DB = 10 − 2 = 8.
    for x in [2i64, 4, 6, 8, 9, 10] {
        let spec = TimedCoordination::new(CoordKind::Early { x }, a, b, d);
        let scenario = Scenario::new(spec.clone(), ctx.clone(), Time::new(5), Time::new(80))?;
        let mut cells = Vec::new();
        let strategies: Vec<Box<dyn BStrategy>> = vec![
            Box::new(OptimalStrategy::new()),
            Box::new(SimpleForkStrategy::default()),
            Box::new(AsyncChainStrategy::new()),
        ];
        for (k, mut strategy) in strategies.into_iter().enumerate() {
            let mut acted = 0u32;
            let mut violations = 0u32;
            for seed in 0..20 {
                let (run, verdict) =
                    scenario.run_verified(strategy.as_mut(), &mut RandomScheduler::seeded(seed))?;
                acted += verdict.b_node.is_some() as u32;
                violations += !verdict.ok as u32;
                if k == 0 {
                    let session = service.open_batch(
                        run,
                        SessionConfig::new()
                            .spec(spec.clone())
                            .probe(ProbeSemantics::ExcludeOwnSends),
                    );
                    let Response::CoordDecision(report) =
                        service.dispatch(session, &Query::CoordDecision)?
                    else {
                        unreachable!()
                    };
                    assert_eq!(
                        report.first_known, verdict.b_node,
                        "facade verdict diverged from the dispatched protocol"
                    );
                    service.close(session)?;
                }
            }
            cells.push(match (acted, violations) {
                (0, 0) => "abstains".to_string(),
                (n, 0) => format!("dispatches {n}/20"),
                (_, v) => format!("UNSAFE ({v} viol.)"),
            });
        }
        println!(
            "{x:>3} | {:^16} | {:^16} | {:^16}",
            cells[0], cells[1], cells[2]
        );
    }

    println!("\nThe zigzag/fork strategies dispatch the freight for any clearance");
    println!("x <= 8 = L(D→A) − U(D→B); the asynchronous strategy can never send");
    println!("a train *before* an event it has not yet heard about.");
    println!("(Every optimal verdict above was re-derived through the service");
    println!("facade's CoordDecision query — identical on all 120 runs.)");
    Ok(())
}
