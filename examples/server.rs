//! Network serving: the socket front end, end to end over a Unix socket.
//!
//! Binds a `NetServer` on a Unix-domain socket over a warm
//! `ZigzagService`, connects a client, and speaks the length-delimited
//! `zigzag-frame v1` envelope *pipelined*, the way the transport is
//! built to be used: every request envelope is encoded into one buffer
//! and written with a single syscall, and the replies are scanned back
//! in order through a reusable `EnvelopeScanner`. The frames cover
//! knowledge queries, a query batch, and a deliberately hostile frame
//! (answered with a deterministic `zigzag-error v1` document in its
//! arrival slot); a final `stats` query shows the serving counters —
//! latency histogram, observer-cache hits/misses, queue depths, and the
//! transport counters proving the syscall amortization — all read from
//! the wire. Ends with a graceful drain.
//!
//! ```text
//! cargo run --example server
//! ```

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use std::io::Write;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    use zigzag::api::net::{
        encode_envelope_into, write_envelope, EnvelopeScanner, NetConfig, NetServer,
    };
    use zigzag::api::{serve, wire, Query, Response, SessionConfig, SessionId, ZigzagService};
    use zigzag::bcm::protocols::Ffip;
    use zigzag::bcm::scheduler::RandomScheduler;
    use zigzag::bcm::{Network, RunCursor, SimConfig, Simulator, Time};
    use zigzag::core::GeneralNode;

    // Figure 1's shape: C fans out to A (fast) and B (slow).
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, 2, 5)?;
    nb.add_channel(c, b, 9, 12)?;
    let ctx = nb.build()?;
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(60)));
    sim.external(Time::new(3), c, "go");
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(1))?;

    // A service with one batch session and one stream session replaying
    // the same schedule — the socket serves both alike.
    let service = Arc::new(ZigzagService::sharded(8));
    let batch = service.open_batch(run.clone(), SessionConfig::new());
    let stream = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
    let mut cursor = RunCursor::new(&run);
    while let Some(ev) = cursor.next_event() {
        service.append(stream, &ev)?;
    }

    let path =
        std::env::temp_dir().join(format!("zigzag-server-example-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(2)
            .poll_interval(Duration::from_millis(5)),
    )?;
    println!(
        "── serving on {} (2 workers) ───────────────────────",
        path.display()
    );

    let mut conn = UnixStream::connect(&path)?;

    // The same knowledge question as the quickstart, now over the wire.
    let sigma_c = run.external_receipt_node(c, "go").unwrap();
    let theta_a = GeneralNode::chain(sigma_c, &[a])?;
    let theta_b = GeneralNode::chain(sigma_c, &[b])?;
    let sigma = theta_b.resolve(&run)?;
    let frames = [
        serve::encode_frame(
            batch,
            &Query::MaxX {
                sigma,
                theta1: theta_a.clone(),
                theta2: theta_b.clone(),
            },
        ),
        serve::encode_frame(
            stream,
            &Query::QueryBatch(vec![
                Query::MaxX {
                    sigma,
                    theta1: theta_a,
                    theta2: theta_b,
                },
                Query::Knows {
                    sigma,
                    theta1: GeneralNode::basic(sigma_c),
                    theta2: GeneralNode::basic(sigma),
                    x: 5,
                },
            ]),
        ),
        // A hostile frame: a session nobody opened. The server answers
        // with a deterministic error document instead of dropping the
        // connection.
        serve::encode_frame(SessionId::from_raw(424242), &Query::MaxXMatrix { sigma }),
    ];
    // Pipelined: all three envelopes in one buffer, one write syscall.
    // The server answers in arrival order — the hostile frame's error
    // document lands in its slot, not out of band.
    let mut request = Vec::new();
    for frame in &frames {
        encode_envelope_into(&mut request, frame)?;
    }
    conn.write_all(&request)?;
    let mut scanner = EnvelopeScanner::new(1 << 22);
    for _ in 0..frames.len() {
        let answer = scanner.recv(&mut conn)?.expect("server closed early");
        let tag = if serve::is_error_document(answer) {
            "error"
        } else {
            "ok"
        };
        println!("[{tag}] {}", answer.lines().nth(1).unwrap_or(""));
    }

    // Serving observability, from the wire: the session line of a Stats
    // frame is routing-only, so any handle will do.
    write_envelope(
        &mut conn,
        &serve::encode_frame(SessionId::from_raw(0), &Query::Stats),
    )?;
    let answer = scanner.recv(&mut conn)?.expect("server closed early");
    let Response::Stats(stats) = wire::decode_response(answer)? else {
        panic!("stats frame answered with a non-stats document");
    };
    println!("── stats over the wire ─────────────────────────────");
    println!(
        "dispatches {:>3}   latency samples {:>3}",
        stats.queries,
        stats.latency.count()
    );
    println!(
        "observer cache: {} hits / {} misses / {} evictions",
        stats.observer_hits, stats.observer_misses, stats.observer_evictions
    );
    println!(
        "sessions across {} shards: {}   worker queue depths: {:?}",
        stats.sessions_per_shard.len(),
        stats.sessions_per_shard.iter().sum::<u64>(),
        stats.queue_depths
    );
    let t = &stats.transport;
    println!(
        "transport: {} frames in over {} reads, {} frames out over {} flushes",
        t.frames_in, t.read_syscalls, t.frames_out, t.writer_flushes
    );
    println!(
        "           {} bytes in / {} bytes out on {} connection(s)",
        t.bytes_in, t.bytes_out, t.connections
    );
    // The pipelined burst is why reads undercut frames: one syscall
    // slurped several envelopes.
    assert!(
        t.read_syscalls < t.frames_in,
        "pipelined reads were not amortized"
    );
    assert!(stats.latency.count() > 0, "warm run recorded no latencies");
    assert!(
        stats.observer_misses > 0,
        "warm run recorded no cache traffic"
    );

    drop(conn);
    server.shutdown();
    println!("── drained and stopped; socket unlinked ────────────");
    Ok(())
}

#[cfg(not(unix))]
fn main() {
    println!("the server example demonstrates Unix-domain sockets; on this platform use NetServer::bind_tcp instead");
}
