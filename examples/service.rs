//! The service facade end to end: batch and streaming sessions side by
//! side, cache policies, coordination decisions, and the wire encoding.
//!
//! One `ZigzagService` serves the same Figure 1 knowledge workload two
//! ways — a batch session over the complete recorded run, and a stream
//! session fed the identical schedule one event at a time (with an LRU
//! bound on its observer cache and periodic append-log compaction). Every
//! answer agrees byte-for-byte; the streaming session additionally
//! reports the Protocol 2 coordination verdict after every event.
//!
//! ```text
//! cargo run --example service
//! ```

use zigzag::api::{
    wire, CachePolicy, CoordKind, Query, Response, SessionConfig, TimedCoordination, ZigzagService,
};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{Network, RunCursor, SimConfig, Simulator, Time};
use zigzag::core::GeneralNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1: C → A [2,5], C → B [9,12].
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, 2, 5)?;
    nb.add_channel(c, b, 9, 12)?;
    let ctx = nb.build()?;

    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(60)));
    sim.external(Time::new(3), c, "go");
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(5))?;

    let service = ZigzagService::new();
    let spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);

    // ── Batch session: the complete recorded run ───────────────────────
    let batch = service.open_batch(run.clone(), SessionConfig::new().spec(spec.clone()));

    // ── Stream session: same schedule, event by event, bounded caches ──
    let config = SessionConfig::new()
        .spec(spec)
        .cache(CachePolicy::unbounded().max_observers(4).compact_every(8));
    let stream = service.open_stream(run.context_arc(), run.horizon(), config);

    let sigma_c = run.external_receipt_node(c, "go").expect("go arrived");
    let theta_a = GeneralNode::chain(sigma_c, &[a])?;
    let theta_b = GeneralNode::chain(sigma_c, &[b])?;
    let sigma_b = theta_b.resolve(&run)?;
    let threshold = Query::MaxX {
        sigma: sigma_b,
        theta1: theta_a,
        theta2: theta_b,
    };

    println!("── streaming the schedule through the service ─────────────");
    let mut cursor = RunCursor::new(&run);
    let mut served = 0usize;
    while let Some(ev) = cursor.next_event() {
        let report = service.append(stream, &ev)?;
        if let Some(knows) = report.b_knows {
            println!(
                "t={:>3}  B node {}: {}",
                report.time.ticks(),
                report.node,
                if knows { "knows — acts" } else { "abstains" }
            );
        }
        // Once B's decision node exists, the standing threshold query is
        // answerable — and identical on both sessions at every prefix.
        if service.with_run(stream, |r| r.appears(sigma_b))? {
            let online = service.dispatch(stream, &threshold)?;
            served += 1;
            assert!(service.observer_count(stream)? <= 4, "LRU bound violated");
            if cursor.remaining() == 0 {
                let offline = service.dispatch(batch, &threshold)?;
                assert_eq!(online, offline, "sessions diverged");
                println!("threshold answered identically by both sessions: {online:?}");
            }
        }
    }
    println!("served {served} streaming threshold queries\n");

    // ── Coordination verdicts agree across session shapes ──────────────
    let on = service.dispatch(stream, &Query::CoordDecision)?;
    let off = service.dispatch(batch, &Query::CoordDecision)?;
    assert_eq!(on, off);
    let Response::CoordDecision(report) = on else {
        unreachable!()
    };
    println!(
        "Protocol 2 verdict (both sessions): first_known = {:?}",
        report.first_known
    );

    // ── The wire encoding round-trips queries and responses ────────────
    let text = wire::encode_query(&threshold);
    println!("── wire form of the threshold query ───────────────────────");
    print!("{text}");
    let decoded = wire::decode_query(&text)?;
    assert_eq!(decoded, threshold);
    let response = service.dispatch(batch, &decoded)?;
    let rtext = wire::encode_response(&response);
    assert_eq!(wire::decode_response(&rtext)?, response);
    println!("decoded and dispatched: {response:?}");

    service.close(stream)?;
    service.close(batch)?;
    assert_eq!(service.session_count(), 0);
    Ok(())
}
