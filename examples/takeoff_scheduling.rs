//! Takeoff scheduling via zigzag causality (Figure 2 as a workload).
//!
//! Two airports, `A` and `B`, feed the same congested destination. The
//! regional tower `C` clears `A`'s departure (`a` = takeoff). Airport `B`
//! must stagger its own takeoff at least `x` minutes after `A`'s:
//! `Late⟨a --x--> b⟩` — but there is **no channel from A or C to B** other
//! than through the paper's zigzag: `C` also notifies the radar relay `D`;
//! an independent carrier `E` (spontaneously activated) messages both `D`
//! and `B`. When `D` reports that it heard `C` *before* `E`, `B` can
//! combine the bounds into Equation (1) and take off safely — a timed
//! guarantee across airports that never exchanged a message.
//!
//! ```text
//! cargo run --example takeoff_scheduling
//! ```

use zigzag::api::{Query, Response, SessionConfig, ZigzagService};
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{Network, Time};
use zigzag::coord::{
    BStrategy, CoordKind, OptimalStrategy, Scenario, SimpleForkStrategy, TimedCoordination,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 2 bounds (one tick = one minute):
    //   C → A [1, 3]   clearance to airport A      (U_CA = 3)
    //   C → D [6, 8]   notification to radar D     (L_CD = 6)
    //   E → D [1, 2]   carrier E's ping to D       (U_ED = 2)
    //   E → B [4, 7]   carrier E's ping to B       (L_EB = 4)
    //   D → B [1, 5]   radar report to B (the "dashed" chain of Fig. 2b)
    let mut nb = Network::builder();
    let a = nb.add_process("airport-A");
    let b = nb.add_process("airport-B");
    let c = nb.add_process("tower-C");
    let d = nb.add_process("radar-D");
    let e = nb.add_process("carrier-E");
    nb.add_channel(c, a, 1, 3)?;
    nb.add_channel(c, d, 6, 8)?;
    nb.add_channel(e, d, 1, 2)?;
    nb.add_channel(e, b, 4, 7)?;
    nb.add_channel(d, b, 1, 5)?;
    let ctx = nb.build()?;

    println!("staggered takeoffs: A cleared by tower C; B must wait x minutes");
    println!("zigzag budget (Eq. 1): −U_CA + L_CD − U_ED + L_EB = −3+6−2+4 = 5 (+1 separation)");
    println!("best simple fork (C→D→B): L − U_CA = 7 − 3 = 4\n");

    println!(
        "{:>3} | {:^18} | {:^18}",
        "x", "optimal-zigzag", "simple-fork"
    );
    println!("{:->3}-+-{:-^18}-+-{:-^18}", "", "", "");
    // The facade re-decides every optimal run from its transcript; B has
    // no outgoing channels in Figure 2b, so the default probe semantics
    // already coincide with the in-simulation protocol.
    let service = ZigzagService::new();
    for x in [2i64, 4, 5, 6, 7] {
        let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
        let scenario = Scenario::new(spec.clone(), ctx.clone(), Time::new(2), Time::new(120))?
            // E is sparked spontaneously, well after C, so D hears C first.
            .with_external(Time::new(25), e, "carrier-ping");
        let mut cells = Vec::new();
        let strategies: Vec<Box<dyn BStrategy>> = vec![
            Box::new(OptimalStrategy::new()),
            Box::new(SimpleForkStrategy::default()),
        ];
        for (k, mut strategy) in strategies.into_iter().enumerate() {
            let mut acted = 0u32;
            let mut violations = 0u32;
            let mut first_takeoff: Option<u64> = None;
            for seed in 0..20 {
                let (run, verdict) =
                    scenario.run_verified(strategy.as_mut(), &mut RandomScheduler::seeded(seed))?;
                violations += !verdict.ok as u32;
                if k == 0 {
                    let session = service.open_batch(run, SessionConfig::new().spec(spec.clone()));
                    let Response::CoordDecision(report) =
                        service.dispatch(session, &Query::CoordDecision)?
                    else {
                        unreachable!()
                    };
                    assert_eq!(report.first_known, verdict.b_node);
                    service.close(session)?;
                }
                if let Some(t) = verdict.b_time {
                    acted += 1;
                    let t = t.ticks();
                    first_takeoff = Some(first_takeoff.map_or(t, |m: u64| m.min(t)));
                }
            }
            cells.push(match (acted, violations, first_takeoff) {
                (0, 0, _) => "holds on ground".to_string(),
                (n, 0, Some(t)) => format!("departs {n}/20 (≥t={t})"),
                (_, v, _) => format!("UNSAFE ({v} viol.)"),
            });
        }
        println!("{x:>3} | {:^18} | {:^18}", cells[0], cells[1]);
    }

    println!("\nAt x = 5 and 6 only the zigzag protocol can clear B for takeoff:");
    println!("the fork evidence tops out at 4, but D's report that it heard the");
    println!("tower before the carrier completes a visible zigzag of weight 6.");
    Ok(())
}
