//! Regenerate the paper's Figure 6–8 drawings from a live run.
//!
//! Writes Graphviz DOT files for the Figure 2b network, its basic bounds
//! graph `GB(r)` and the extended graph `GE(r, σ)` at `B`'s decision node,
//! plus the ASCII space–time diagram.
//!
//! ```text
//! cargo run --example visualize
//! dot -Tsvg target/figures/ge.dot -o ge.svg   # if graphviz is installed
//! ```

use std::fs;
use std::path::Path;

use zigzag::api::{Query, Response, SessionConfig, ZigzagService};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{diagram, Network, SimConfig, Simulator, Time};
use zigzag::core::bounds_graph::BoundsGraph;
use zigzag::core::dot;
use zigzag::core::extended_graph::ExtendedGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 2b network.
    let mut nb = Network::builder();
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    let c = nb.add_process("C");
    let d = nb.add_process("D");
    let e = nb.add_process("E");
    nb.add_channel(c, a, 1, 3)?;
    nb.add_channel(c, d, 6, 8)?;
    nb.add_channel(e, d, 1, 2)?;
    nb.add_channel(e, b, 4, 7)?;
    nb.add_channel(d, b, 1, 5)?;
    let ctx = nb.build()?;

    let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(45)));
    sim.external(Time::new(2), c, "go_c");
    sim.external(Time::new(18), e, "go_e");
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(11))?;

    println!("── space–time diagram (Figure 2b) ─────────────────────────");
    println!("{}", diagram::render(&run));

    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir)?;

    let net_dot = dot::network_dot(ctx.network(), ctx.bounds());
    fs::write(out_dir.join("network.dot"), &net_dot)?;

    let gb = BoundsGraph::of_run(&run);
    let gb_dot = dot::bounds_graph_dot(&gb, &run);
    fs::write(out_dir.join("gb.dot"), &gb_dot)?;

    // σ = B's last recorded node (where the protocol would decide).
    let sigma = run.timeline(b).last().unwrap().id();
    let ge = ExtendedGraph::new(&run, sigma);
    let ge_dot = dot::extended_graph_dot(&ge, &run);
    fs::write(out_dir.join("ge.dot"), &ge_dot)?;

    println!("wrote target/figures/{{network,gb,ge}}.dot");
    println!(
        "GB(r): {} vertices, {} edges · GE(r, {sigma}): {} vertices, {} edges",
        gb.node_count(),
        gb.edge_count(),
        ge.graph().vertex_count(),
        ge.graph().edge_count(),
    );
    println!("render with: dot -Tsvg target/figures/ge.dot -o ge.svg");

    // The same GE powers the service facade's knowledge answers: the
    // all-pairs threshold matrix at σ summarizes what B knows here.
    let service = ZigzagService::new();
    let session = service.open_batch(run.clone(), SessionConfig::new());
    let Response::MaxXMatrix(matrix) = service.dispatch(session, &Query::MaxXMatrix { sigma })?
    else {
        unreachable!()
    };
    let known = matrix.iter().filter(|(_, _, v)| v.is_some()).count();
    println!(
        "knowledge at {sigma}: {}×{} threshold matrix, {known} reachable pairs",
        matrix.len(),
        matrix.len(),
    );
    Ok(())
}
