//! Quickstart: the Figure 1 scenario end to end.
//!
//! Builds the three-process network of the paper's Figure 1, simulates it,
//! asks the knowledge engine what `B` can deduce, extracts the zigzag
//! witness, and runs the optimal Late-coordination protocol.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{diagram, Network, SimConfig, Simulator, Time};
use zigzag::coord::{CoordKind, OptimalStrategy, Scenario, TimedCoordination};
use zigzag::core::knowledge::KnowledgeEngine;
use zigzag::core::GeneralNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── The network of Figure 1 ────────────────────────────────────────
    // C sends to A with bounds [2, 5] and to B with bounds [9, 12].
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, 2, 5)?;
    nb.add_channel(c, b, 9, 12)?;
    let ctx = nb.build()?;

    // ── Simulate one run ───────────────────────────────────────────────
    let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(40)));
    sim.external(Time::new(3), c, "go");
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(7))?;

    println!("── space–time diagram ─────────────────────────────────────");
    println!("{}", diagram::render(&run));

    // ── What does B know when C's message arrives? ─────────────────────
    let sigma_c = run.external_receipt_node(c, "go").expect("go arrived");
    let theta_a = GeneralNode::chain(sigma_c, &[a])?; // where A acts
    let theta_b = GeneralNode::chain(sigma_c, &[b])?; // where B hears C
    let sigma_b = theta_b.resolve(&run)?;

    let engine = KnowledgeEngine::new(&run, sigma_b)?;
    let max_x = engine.max_x(&theta_a, &theta_b)?.expect("reachable");
    println!("B's knowledge threshold: a --x--> b holds for every x <= {max_x}");
    println!("  (the fork weight L_CB − U_CA = 9 − 5 = 4)");

    let (w, witness) = engine.witness(&theta_a, &theta_b)?.expect("witness");
    let report = witness.validate(&run)?;
    println!(
        "σ-visible zigzag witness: weight {w}, realized gap {} (Theorem 1: gap >= weight)",
        report.gap
    );

    // ── Run the optimal Late⟨a --4--> b⟩ protocol across schedules ─────
    let spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);
    let scenario = Scenario::new(spec, ctx, Time::new(3), Time::new(60))?;
    let mut acted = 0;
    for seed in 0..10 {
        let (run, verdict) = scenario.run_verified(
            &mut OptimalStrategy::new(),
            &mut RandomScheduler::seeded(seed),
        )?;
        assert!(
            verdict.ok,
            "specification violated: {:?}",
            verdict.violation
        );
        if let (Some(ta), Some(tb)) = (verdict.a_time, verdict.b_time) {
            acted += 1;
            println!(
                "seed {seed}: a at t={ta}, b at t={tb} (margin {})",
                verdict.margin.unwrap()
            );
        }
        let _ = run;
    }
    println!("B acted in {acted}/10 runs — always safely, never waiting for A.");
    Ok(())
}
