//! Quickstart: the Figure 1 scenario end to end, through `zigzag::api`.
//!
//! Builds the three-process network of the paper's Figure 1, simulates it,
//! opens a batch session on the service facade, asks what `B` can deduce
//! (threshold + zigzag witness), and runs the optimal Late-coordination
//! protocol — checking the facade's `CoordDecision` verdict against the
//! in-simulation protocol on every schedule.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use zigzag::api::{
    CoordKind, ProbeSemantics, Query, Response, SessionConfig, TimedCoordination, ZigzagService,
};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{diagram, Network, SimConfig, Simulator, Time};
use zigzag::coord::{OptimalStrategy, Scenario};
use zigzag::core::GeneralNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── The network of Figure 1 ────────────────────────────────────────
    // C sends to A with bounds [2, 5] and to B with bounds [9, 12].
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, 2, 5)?;
    nb.add_channel(c, b, 9, 12)?;
    let ctx = nb.build()?;

    // ── Simulate one run ───────────────────────────────────────────────
    let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(40)));
    sim.external(Time::new(3), c, "go");
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(7))?;

    println!("── space–time diagram ─────────────────────────────────────");
    println!("{}", diagram::render(&run));

    // ── What does B know when C's message arrives? ─────────────────────
    // One service, one batch session, one dispatch for both questions.
    let service = ZigzagService::new();
    let session = service.open_batch(run.clone(), SessionConfig::new());

    let sigma_c = run.external_receipt_node(c, "go").expect("go arrived");
    let theta_a = GeneralNode::chain(sigma_c, &[a])?; // where A acts
    let theta_b = GeneralNode::chain(sigma_c, &[b])?; // where B hears C
    let sigma_b = theta_b.resolve(&run)?;

    let answers = service.dispatch(
        session,
        &Query::QueryBatch(vec![
            Query::MaxX {
                sigma: sigma_b,
                theta1: theta_a.clone(),
                theta2: theta_b.clone(),
            },
            Query::Witness {
                sigma: sigma_b,
                theta1: theta_a,
                theta2: theta_b,
            },
        ]),
    )?;
    let Response::ResponseBatch(answers) = answers else {
        unreachable!("batch queries return batch responses");
    };
    let Response::MaxX(Some(max_x)) = answers[0] else {
        panic!("threshold must be reachable in Figure 1");
    };
    println!("B's knowledge threshold: a --x--> b holds for every x <= {max_x}");
    println!("  (the fork weight L_CB − U_CA = 9 − 5 = 4)");
    let Response::Witness(Some(witness)) = &answers[1] else {
        panic!("positive thresholds carry witnesses");
    };
    println!(
        "σ-visible zigzag witness: weight {} — {}",
        witness.weight, witness.pattern
    );
    assert_eq!(witness.weight, max_x);
    // The structured certificate lives on the engine layer: revalidate
    // it against the run (Theorem 1: realized gap >= witness weight) and
    // check it is the very witness the facade rendered.
    let engine = zigzag::core::knowledge::KnowledgeEngine::new(&run, sigma_b)?;
    let (w, vz) = engine
        .witness(
            &GeneralNode::chain(sigma_c, &[a])?,
            &GeneralNode::chain(sigma_c, &[b])?,
        )?
        .expect("witness");
    let report = vz.validate(&run)?;
    assert!(report.gap >= w, "Theorem 1 violated");
    assert_eq!(
        (w, vz.to_string()),
        (witness.weight, witness.pattern.clone())
    );
    println!(
        "witness revalidated against the run: realized gap {} >= {w}",
        report.gap
    );

    // ── Run the optimal Late⟨a --4--> b⟩ protocol across schedules ─────
    let spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);
    let scenario = Scenario::new(spec.clone(), ctx, Time::new(3), Time::new(60))?;
    let mut acted = 0;
    for seed in 0..10 {
        let (run, verdict) = scenario.run_verified(
            &mut OptimalStrategy::new(),
            &mut RandomScheduler::seeded(seed),
        )?;
        assert!(
            verdict.ok,
            "specification violated: {:?}",
            verdict.violation
        );
        // The facade's coordination verdict on the recorded run agrees
        // with the in-simulation protocol exactly (B has no outgoing
        // channels here, so both probe semantics coincide).
        let coord_session = service.open_batch(
            run.clone(),
            SessionConfig::new()
                .spec(spec.clone())
                .probe(ProbeSemantics::ExcludeOwnSends),
        );
        let Response::CoordDecision(report) =
            service.dispatch(coord_session, &Query::CoordDecision)?
        else {
            unreachable!()
        };
        assert_eq!(report.first_known, verdict.b_node);
        service.close(coord_session)?;

        if let (Some(ta), Some(tb)) = (verdict.a_time, verdict.b_time) {
            acted += 1;
            println!(
                "seed {seed}: a at t={ta}, b at t={tb} (margin {})",
                verdict.margin.unwrap()
            );
        }
    }
    println!("B acted in {acted}/10 runs — always safely, never waiting for A.");
    Ok(())
}
