//! High-throughput serving: the sharded wire loop and warm exclude-mode
//! coordination.
//!
//! A `ZigzagService` with a sharded session table serves a batch of
//! wire-encoded request frames through `zigzag::api::serve` — first on
//! one worker, then on four, with byte-identical responses (sessions
//! hash to shards, each worker owns its shards, answers come back in
//! per-session arrival order). A second part streams a feedback-topology
//! schedule into a spec-configured `ExcludeOwnSends` session: the
//! Protocol 2 decisions are served from the incremental engine's warm
//! own-sends-excluded observer states instead of rebuilding a
//! `MessageIndex` plus an excluded `GE(r, σ)` per decision node.
//!
//! ```text
//! cargo run --example serving
//! ```

use zigzag::api::{
    serve, CoordKind, ProbeSemantics, Query, Response, SessionConfig, TimedCoordination,
    ZigzagService,
};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{Network, RunCursor, SimConfig, Simulator, Time};
use zigzag::core::GeneralNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A feedback topology: C fans out to A, B, D; B ⇄ D cycle, so B has
    // outgoing channels — the regime where exclude-mode probing differs
    // from the paper's full GE(r, σ).
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    let d = nb.add_process("D");
    nb.add_channel(c, a, 2, 5)?;
    nb.add_channel(c, b, 9, 12)?;
    nb.add_channel(c, d, 1, 2)?;
    nb.add_channel(b, d, 1, 4)?;
    nb.add_channel(d, b, 1, 3)?;
    let ctx = nb.build()?;

    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(50)));
    sim.external(Time::new(3), c, "go");
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(9))?;

    // ── Part 1: the sharded wire loop ──────────────────────────────────
    let service = ZigzagService::sharded(8);
    println!(
        "── sharded wire dispatch ({} shards) ──────────────────────",
        service.shard_count()
    );

    let sessions: Vec<_> = (0..4)
        .map(|_| service.open_batch(run.clone(), SessionConfig::new()))
        .collect();
    let nodes: Vec<_> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let mut frames = Vec::new();
    for (k, &sigma) in nodes.iter().enumerate() {
        let id = sessions[k % sessions.len()];
        frames.push(serve::encode_frame(
            id,
            &Query::QueryBatch(vec![
                Query::MaxX {
                    sigma,
                    theta1: GeneralNode::basic(nodes[0]),
                    theta2: GeneralNode::basic(sigma),
                },
                Query::TightBound {
                    from: nodes[0],
                    to: sigma,
                },
            ]),
        ));
    }
    let serial = serve::serve(&service, &frames, 1);
    let fleet = serve::serve(&service, &frames, 4);
    assert_eq!(serial, fleet, "worker fleets must not change a byte");
    println!(
        "{} frames × {} sessions: 1-worker and 4-worker responses identical",
        frames.len(),
        sessions.len()
    );
    println!(
        "first frame answers:\n{}",
        serial[0].lines().take(2).collect::<Vec<_>>().join("\n")
    );

    // ── Part 2: warm exclude-mode coordination ─────────────────────────
    println!("\n── warm exclude-mode coordination (probe view, B ⇄ D) ─────");
    let spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);
    let session = service.open_stream(
        run.context_arc(),
        run.horizon(),
        SessionConfig::new()
            .spec(spec)
            .probe(ProbeSemantics::ExcludeOwnSends),
    );
    let mut cursor = RunCursor::new(&run);
    let mut decisions = 0usize;
    while let Some(ev) = cursor.next_event() {
        let report = service.append(session, &ev)?;
        if let Some(knows) = report.b_knows {
            decisions += 1;
            if knows && decisions > 0 {
                println!(
                    "B can act at {} (t={}): decided on the cached exclude-mode state",
                    report.node, report.time
                );
                break;
            }
        }
    }
    let Response::CoordDecision(coord) = service.dispatch(session, &Query::CoordDecision)? else {
        unreachable!("coordination queries return coordination reports");
    };
    println!(
        "{} B-node decisions before it fired; verdict node: {}",
        decisions,
        coord
            .first_known
            .map_or("(abstains)".to_string(), |n| n.to_string()),
    );
    println!(
        "observer states held warm (both modes share the session cache): {}",
        service.observer_count(session)?
    );
    Ok(())
}
