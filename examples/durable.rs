//! Durability: log, crash, recover, and migrate a live session.
//!
//! Feeds a stream session through a [`SessionStore`] that logs every
//! append and installs a snapshot on cadence, then kills the process
//! state, tears the log mid-record the way a real crash does, and
//! recovers: the torn tail is dropped, the snapshot restores the prefix
//! in bulk, and the log tail replays through the normal append path.
//! The recovered session's probe answers are asserted byte-identical to
//! a session that never crashed.
//!
//! The second act moves the recovered session between two *live*
//! processes: two `NetServer`s on Unix sockets, a `Query::Export` frame
//! on one, the returned `zigzag-snap v1` document fed to the other as a
//! `Query::Import` frame, and the same probe asked of both — the
//! answers come back identical down to the byte.
//!
//! ```text
//! cargo run --example durable
//! ```

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use std::io::Write;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    use zigzag::api::net::{read_envelope, write_envelope, NetConfig, NetServer};
    use zigzag::api::{
        serve, wire, Query, Response, SessionConfig, SessionId, SessionStore, StoreConfig,
        ZigzagService,
    };
    use zigzag::bcm::protocols::Ffip;
    use zigzag::bcm::scheduler::RandomScheduler;
    use zigzag::bcm::{Network, RunCursor, SimConfig, Simulator, Time};
    use zigzag::core::GeneralNode;

    // Figure 1's shape: C fans out to A (fast) and B (slow).
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, 2, 5)?;
    nb.add_channel(c, b, 9, 12)?;
    let ctx = nb.build()?;
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(60)));
    sim.external(Time::new(3), c, "go");
    // A steady drip of later signals so the feed is long enough for the
    // snapshot cadence to engage.
    for (i, t) in (8..45).step_by(4).enumerate() {
        sim.external(Time::new(t), c, format!("tick-{i}"));
    }
    let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(1))?;
    let events: Vec<_> = {
        let mut cursor = RunCursor::new(&run);
        let mut events = Vec::new();
        while let Some(ev) = cursor.next_event() {
            events.push(ev);
        }
        events
    };

    // The probe both acts re-ask: how far apart can A's and B's views of
    // the same "go" signal drift?
    let sigma_c = run.external_receipt_node(c, "go").unwrap();
    let theta_a = GeneralNode::chain(sigma_c, &[a])?;
    let theta_b = GeneralNode::chain(sigma_c, &[b])?;
    let sigma = theta_b.resolve(&run)?;
    let probe = Query::MaxX {
        sigma,
        theta1: theta_a,
        theta2: theta_b,
    };

    // The reference: a session that never crashes.
    let reference = {
        let service = ZigzagService::new();
        let id = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
        for ev in &events {
            service.append(id, ev)?;
        }
        service.dispatch(id, &probe)?
    };

    // ── Act 1: log every append, snapshot on cadence, crash, recover ──
    let root = std::env::temp_dir().join(format!("zigzag-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    {
        let store = SessionStore::open(&root, StoreConfig::new().snapshot_every(16))?;
        let service = ZigzagService::new();
        let id = store.open_stream(
            &service,
            "flight",
            run.context_arc(),
            run.horizon(),
            SessionConfig::new(),
        )?;
        for ev in &events {
            store.append(&service, id, ev)?;
        }
        println!("fed {} events into {}", events.len(), root.display());
        // The crash: every in-memory structure dies with this scope.
    }
    // A real crash can also tear the last record in half.
    {
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join("flight.log"))?;
        log.write_all(b"ev d 1 tor")?; // no newline: a torn record
    }

    let store = SessionStore::open(&root, StoreConfig::new())?;
    let service = Arc::new(ZigzagService::sharded(4));
    let rec = store.recover(&service, "flight")?;
    println!(
        "recovered: snapshot={} restored={} replayed={} torn-tail-dropped={}",
        rec.from_snapshot, rec.restored_events, rec.replayed_events, rec.truncated
    );
    assert!(rec.truncated, "the torn record should have been dropped");
    let answer = service.dispatch(rec.id, &probe)?;
    assert_eq!(answer, reference, "recovery changed an answer");
    println!("probe after recovery matches the uncrashed session: {answer:?}");

    // ── Act 2: migrate the recovered session between live servers ──
    let sock = |tag: &str| {
        std::env::temp_dir().join(format!("zigzag-durable-{tag}-{}.sock", std::process::id()))
    };
    let (path_a, path_b) = (sock("a"), sock("b"));
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
    let cfg = || {
        NetConfig::new()
            .workers(2)
            .poll_interval(Duration::from_millis(5))
    };
    let server_a = NetServer::bind_unix(&path_a, Arc::clone(&service), cfg())?;
    let service_b = Arc::new(ZigzagService::sharded(4));
    let server_b = NetServer::bind_unix(&path_b, Arc::clone(&service_b), cfg())?;

    let mut conn_a = UnixStream::connect(&path_a)?;
    let mut conn_b = UnixStream::connect(&path_b)?;

    // Export from A: the session becomes one self-contained document.
    write_envelope(&mut conn_a, &serve::encode_frame(rec.id, &Query::Export))?;
    let doc = read_envelope(&mut conn_a, 1 << 22)?.expect("server A closed early");
    let Response::Exported(snap) = wire::decode_response(&doc)? else {
        panic!("export answered with a non-snapshot document");
    };
    println!("exported a {}-event snapshot from server A", snap.events);

    // Import into B: any session line routes an import frame.
    write_envelope(
        &mut conn_b,
        &serve::encode_frame(SessionId::from_raw(0), &Query::Import(snap)),
    )?;
    let doc = read_envelope(&mut conn_b, 1 << 22)?.expect("server B closed early");
    let Response::Imported(moved) = wire::decode_response(&doc)? else {
        panic!("import answered without a session handle");
    };

    // The same probe against both servers: byte-identical envelopes.
    write_envelope(&mut conn_a, &serve::encode_frame(rec.id, &probe))?;
    write_envelope(&mut conn_b, &serve::encode_frame(moved, &probe))?;
    let doc_a = read_envelope(&mut conn_a, 1 << 22)?.expect("server A closed early");
    let doc_b = read_envelope(&mut conn_b, 1 << 22)?.expect("server B closed early");
    assert_eq!(doc_a, doc_b, "the probe diverged across the migration");
    println!("probe answers on both servers are byte-identical");

    drop((conn_a, conn_b));
    server_a.shutdown();
    server_b.shutdown();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
    let _ = std::fs::remove_dir_all(&root);
    println!("done");
    Ok(())
}

#[cfg(not(unix))]
fn main() {
    eprintln!("this example needs Unix-domain sockets");
}
